#pragma once
// Event-driven online rescheduling (the ROADMAP's "online rescheduling with
// task dropping/pruning" item).
//
// The paper's solver is one-shot: it emits a robust plan offline and the
// simulator merely measures how badly reality deviates. OnlineRescheduler
// closes the loop: it replays a realization of the plan, watches completion
// events for drift past a configurable trigger, and when the trigger fires it
//
//   1. freezes the executed/running prefix (tasks started by the trigger
//      instant) as a PartialSchedule — history cannot be rewritten;
//   2. lets a DropPolicy cancel live tasks that are no longer worth running
//      (descendant-closed; see resched/drop_policy.hpp), emitting one audit
//      record per decision;
//   3. re-solves the remaining tasks with the GA over a pinned cost matrix —
//      frozen and dropped tasks are nailed to their processors via penalty
//      costs, the incumbent chromosome warm-starts the population — and
//      projects the winner back onto the frozen prefix;
//
// then resumes the replay under the revised plan. The loop repeats until no
// trigger fires or the re-solve budget is exhausted.
//
// Triggers:
//   * kSlackExhaustion — a completion slips more than slack_threshold x
//     planned makespan past its predicted finish (the Def. 3.3 slack the
//     static schedule allotted that task is gone);
//   * kDeadlineRisk    — a completed task misses risk_threshold x its own
//     deadline (needs per-task deadlines; the first realized miss signals
//     oversubscription);
//   * kCadence         — every cadence-th completion, unconditionally.

#include <cstdint>
#include <vector>

#include "ga/engine.hpp"
#include "resched/drop_policy.hpp"
#include "sched/partial_schedule.hpp"
#include "sched/schedule.hpp"
#include "workload/problem.hpp"

namespace rts {

enum class TriggerKind {
  kSlackExhaustion,
  kDeadlineRisk,
  kCadence,
};

/// Stable display name ("slack-exhaustion", "deadline-risk", "cadence").
std::string_view to_string(TriggerKind kind) noexcept;

/// Light GA settings for in-loop re-solves (small population, short run,
/// kMinimizeMakespan); the offline defaults would dominate the replay cost.
GaConfig default_resched_ga();

struct ReschedConfig {
  TriggerKind trigger = TriggerKind::kSlackExhaustion;
  /// kSlackExhaustion: re-plan when a completion slips more than this
  /// fraction of the planned makespan past its predicted finish.
  double slack_threshold = 0.05;
  /// kDeadlineRisk: re-plan when a completion exceeds this multiple of its
  /// own deadline (1.0 = the first realized miss).
  double risk_threshold = 1.0;
  /// kCadence: re-plan after every this-many completions.
  std::size_t cadence = 10;
  /// Upper bound on re-solves per run (each costs one GA run).
  std::size_t max_resolves = 3;

  DropPolicyKind drop = DropPolicyKind::kNever;
  DropPolicyParams drop_params;
  /// Triage budget: at most ceil(cap x live tasks) policy-proposed drops are
  /// acted on per re-solve, lowest completion probability first (forced
  /// descendant-closure drops are exempt). Completion estimates reflect the
  /// pre-drop schedule, so without a cap heavy oversubscription makes every
  /// task look doomed at once and the policy cancels work the lightened
  /// schedule could have saved; capped rounds let later re-solves re-estimate
  /// the survivors. 1.0 disables the cap.
  double drop_fraction_cap = 0.25;
  /// Seed of the per-round drop-policy Monte-Carlo estimates.
  std::uint64_t drop_seed = 1;

  /// Re-solve GA settings (population, iterations, seed). The objective is
  /// forced to kMinimizeMakespan — slack maximization is a property of
  /// offline plans; mid-execution the only goal is finishing soon.
  GaConfig ga = default_resched_ga();
  /// Warm-start the GA population from the incumbent chromosome. Off = cold
  /// restarts (the ablation baseline for the re-solve cost comparison).
  bool warm_start = true;
  /// Validate every projected PartialSchedule with ScheduleValidator's
  /// partial mode (also enabled by the RTS_CHECK environment variable).
  bool validate = false;
};

/// Audit record of one re-solve.
struct ReschedDecisionRecord {
  TriggerKind trigger{};
  double decision_time = 0.0;      ///< the trigger instant T*
  std::size_t completions = 0;     ///< completion events observed by then
  std::size_t frozen = 0;          ///< tasks pinned to history at T*
  std::size_t dropped_new = 0;     ///< tasks cancelled this round
  std::size_t ga_iterations = 0;   ///< generations the re-solve ran
  double incumbent_makespan = 0.0; ///< predicted finish before the re-solve
  double resolved_makespan = 0.0;  ///< predicted finish after it
  std::vector<DropDecision> drops; ///< one audit record per live candidate
};

/// Outcome of one online-rescheduled execution.
struct ReschedRunResult {
  Schedule final_schedule;             ///< last revised plan (dropped at tails)
  std::vector<std::uint8_t> dropped;   ///< size n; 1 = cancelled
  std::vector<double> start;           ///< realized trajectory (placeholders for dropped)
  std::vector<double> finish;
  double makespan = 0.0;               ///< max finish over non-dropped tasks
  std::size_t resolves = 0;
  std::size_t ga_iterations_total = 0;
  std::vector<ReschedDecisionRecord> decisions;
  // Deadline metrics (0 / full value when the instance has no deadlines):
  std::size_t deadline_misses = 0;     ///< late non-dropped tasks + dropped tasks
  double value_accrued = 0.0;          ///< sum of values of on-time completions
};

/// Replay `realized` durations (n x m) against `plan`, rescheduling whenever
/// the configured trigger fires. Deterministic in its arguments.
ReschedRunResult run_online_reschedule(const ProblemInstance& instance,
                                       const Schedule& plan,
                                       const Matrix<double>& realized,
                                       const ReschedConfig& config);

/// Monte-Carlo evaluation settings for evaluate_resched.
struct ReschedEvalConfig {
  std::size_t realizations = 50;
  std::uint64_t seed = 1;
  /// Threads for the realization loop; 0 = OpenMP default. Results are
  /// bit-identical for any value (per-realization substreams, dense result
  /// arrays, serial reduction).
  std::size_t threads = 0;
};

/// Aggregated robustness of online rescheduling over many realizations.
struct ReschedEvalReport {
  std::size_t realizations = 0;
  double mean_makespan = 0.0;
  double deadline_miss_rate = 0.0;   ///< mean fraction of tasks missing deadlines
  double mean_value_accrued = 0.0;
  double value_possible = 0.0;       ///< sum of all task values (upper bound)
  double mean_dropped = 0.0;         ///< mean cancelled tasks per run
  double mean_resolves = 0.0;
  double mean_ga_iterations = 0.0;   ///< mean GA generations spent per run
};

/// Run `run_online_reschedule` over sampled realizations of `instance` and
/// aggregate. Realization i uses the seed substream i, so results are
/// bit-identical for any thread count.
ReschedEvalReport evaluate_resched(const ProblemInstance& instance, const Schedule& plan,
                                   const ReschedConfig& config,
                                   const ReschedEvalConfig& mc);

}  // namespace rts
