#include "resched/rescheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#ifdef RTS_HAVE_OPENMP
#include <omp.h>
#endif

#include "check/validator.hpp"
#include "ga/chromosome.hpp"
#include "graph/topology.hpp"
#include "sched/timing.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workload/uncertainty.hpp"

namespace rts {

std::string_view to_string(TriggerKind kind) noexcept {
  switch (kind) {
    case TriggerKind::kSlackExhaustion: return "slack-exhaustion";
    case TriggerKind::kDeadlineRisk: return "deadline-risk";
    case TriggerKind::kCadence: return "cadence";
  }
  return "unknown";
}

GaConfig default_resched_ga() {
  // Much lighter than the paper's offline budget: re-solves happen inside a
  // Monte-Carlo loop and start from a warm incumbent, so a short run suffices.
  GaConfig ga;
  ga.population_size = 16;
  ga.max_iterations = 60;
  ga.stagnation_window = 15;
  ga.history_stride = 0;
  ga.objective = ObjectiveKind::kMinimizeMakespan;
  return ga;
}

namespace {

/// Per-task durations on the assigned processors of `schedule`, honoring the
/// partial-schedule convention: 0 for frozen (pinned anyway) and dropped.
IdVector<TaskId, double> live_durations(const Matrix<double>& costs,
                                        const Schedule& schedule,
                                        const IdVector<TaskId, std::uint8_t>& frozen,
                                        const IdVector<TaskId, std::uint8_t>& dropped) {
  const std::size_t n = schedule.task_count();
  IdVector<TaskId, double> durations(n, 0.0);
  for (const TaskId t : id_range<TaskId>(n)) {
    if (frozen[t] != 0 || dropped[t] != 0) continue;
    durations[t] = costs(t.index(), schedule.proc_of(t).index());
  }
  return durations;
}

/// Earliest trigger instant in the `actual` trajectory, or +inf. Only events
/// strictly after the previous decision instant count, so every re-solve
/// makes progress.
double find_trigger(const ReschedConfig& config, const ProblemInstance& instance,
                    const PartialSchedule& partial, const ScheduleTiming& actual,
                    const ScheduleTiming& predicted, double planned_makespan) {
  const std::size_t n = partial.task_count();
  const double after = partial.decision_time;
  double tstar = std::numeric_limits<double>::infinity();
  switch (config.trigger) {
    case TriggerKind::kSlackExhaustion: {
      const double budget = config.slack_threshold * planned_makespan;
      for (const TaskId t : id_range<TaskId>(n)) {
        if (partial.dropped[t] != 0 || actual.finish[t] <= after) continue;
        if (actual.finish[t] > predicted.finish[t] + budget) {
          tstar = std::min(tstar, actual.finish[t]);
        }
      }
      break;
    }
    case TriggerKind::kDeadlineRisk: {
      if (!instance.has_deadlines()) break;
      for (const TaskId t : id_range<TaskId>(n)) {
        if (partial.dropped[t] != 0 || actual.finish[t] <= after) continue;
        if (actual.finish[t] > config.risk_threshold * instance.deadline[t]) {
          tstar = std::min(tstar, actual.finish[t]);
        }
      }
      break;
    }
    case TriggerKind::kCadence: {
      std::vector<double> finishes;
      finishes.reserve(n);
      for (const TaskId t : id_range<TaskId>(n)) {
        if (partial.dropped[t] == 0) finishes.push_back(actual.finish[t]);
      }
      std::sort(finishes.begin(), finishes.end());
      for (std::size_t i = 0; i < finishes.size(); ++i) {
        if ((i + 1) % config.cadence == 0 && finishes[i] > after) {
          tstar = finishes[i];
          break;
        }
      }
      break;
    }
  }
  return tstar;
}

}  // namespace

ReschedRunResult run_online_reschedule(const ProblemInstance& instance,
                                       const Schedule& plan,
                                       const Matrix<double>& realized,
                                       const ReschedConfig& config) {
  const TaskGraph& graph = instance.graph;
  const Platform& platform = instance.platform;
  const std::size_t n = instance.task_count();
  const std::size_t m = instance.proc_count();
  RTS_REQUIRE(plan.task_count() == n, "plan does not match the instance");
  RTS_REQUIRE(realized.rows() == n && realized.cols() == m,
              "realized matrix has wrong shape");
  RTS_REQUIRE(config.slack_threshold >= 0.0, "slack threshold must be non-negative");
  RTS_REQUIRE(config.risk_threshold > 0.0, "risk threshold must be positive");
  RTS_REQUIRE(config.cadence > 0, "cadence must be positive");
  RTS_REQUIRE(config.drop_fraction_cap > 0.0 && config.drop_fraction_cap <= 1.0,
              "drop fraction cap must be in (0, 1]");

  const double planned_makespan =
      compute_schedule_timing(graph, platform, plan, instance.expected).makespan;

  // Mutable execution state: the incumbent plan plus frozen/dropped flags and
  // the realized history of the frozen prefix.
  Schedule cur = plan;
  IdVector<TaskId, std::uint8_t> frozen(n, 0);
  IdVector<TaskId, std::uint8_t> dropped(n, 0);
  IdVector<TaskId, double> frozen_start(n, 0.0);
  IdVector<TaskId, double> frozen_finish(n, 0.0);
  double decision_time = 0.0;

  ReschedRunResult result{plan, {}, {}, {}, 0.0, 0, 0, {}, 0, 0.0};
  Rng drop_rng(config.drop_seed);
  const std::vector<TaskId> topo = topological_order(graph);
  const std::unique_ptr<DropPolicy> policy =
      make_drop_policy(config.drop, config.drop_params);

  for (;;) {
    const PartialSchedule part{cur,          frozen,        dropped,
                               frozen_start, frozen_finish, decision_time};
    const IdVector<TaskId, double> rdur = live_durations(realized, cur, frozen, dropped);
    const IdVector<TaskId, double> edur =
        live_durations(instance.expected, cur, frozen, dropped);
    // One replay per event, not a realization loop: each iteration's partial
    // schedule differs. rts-lint: allow(no-scalar-mc-in-loop)
    const ScheduleTiming actual = partial_timing(graph, platform, part, rdur);

    double tstar = std::numeric_limits<double>::infinity();
    if (result.resolves < config.max_resolves) {
      // rts-lint: allow(no-scalar-mc-in-loop) — per-event trigger check.
      const ScheduleTiming predicted = partial_timing(graph, platform, part, edur);
      tstar = find_trigger(config, instance, part, actual, predicted, planned_makespan);
    }
    if (!std::isfinite(tstar)) {
      // No (further) intervention: commit the realized trajectory.
      result.final_schedule = cur;
      result.dropped = dropped.raw();
      result.start = actual.start.raw();
      result.finish = actual.finish.raw();
      result.makespan = actual.makespan;
      for (const TaskId t : id_range<TaskId>(n)) {
        if (dropped[t] != 0) {
          ++result.deadline_misses;
        } else if (instance.has_deadlines() &&
                   actual.finish[t] > instance.deadline[t]) {
          ++result.deadline_misses;
        } else {
          result.value_accrued += instance.task_value(t);
        }
      }
      return result;
    }

    // --- Freeze the executed/running prefix at the trigger instant. ---
    decision_time = tstar;
    std::size_t completions = 0;
    for (const TaskId t : id_range<TaskId>(n)) {
      if (dropped[t] != 0) continue;
      if (actual.finish[t] <= tstar) ++completions;
      if (actual.start[t] <= tstar && frozen[t] == 0) {
        frozen[t] = 1;
        frozen_start[t] = actual.start[t];
        frozen_finish[t] = actual.finish[t];
      }
    }

    // --- Drop decisions over the live tasks (descendant-closed). ---
    // Starts non-decrease along each sequence, so the enlarged frozen set is
    // still a prefix of every processor's non-dropped segment and `part2` is
    // well formed without resequencing.
    const PartialSchedule part2{cur,          frozen,        dropped,
                                frozen_start, frozen_finish, decision_time};
    const IdVector<TaskId, double> edur2 =
        live_durations(instance.expected, cur, frozen, dropped);
    // rts-lint: allow(no-scalar-mc-in-loop) — per-event incumbent timing.
    const ScheduleTiming predicted2 = partial_timing(graph, platform, part2, edur2);
    ReschedDecisionRecord rec;
    rec.trigger = config.trigger;
    rec.decision_time = tstar;
    rec.completions = completions;
    rec.incumbent_makespan = predicted2.makespan;
    if (instance.has_deadlines() && config.drop != DropPolicyKind::kNever) {
      const IdVector<TaskId, double> bdur2 =
          live_durations(instance.bcet, cur, frozen, dropped);
      // rts-lint: allow(no-scalar-mc-in-loop) — per-event BCET bound.
      const ScheduleTiming optimistic = partial_timing(graph, platform, part2, bdur2);
      Matrix<double> samples;
      if (config.drop == DropPolicyKind::kProbabilistic) {
        samples = sample_completion_finishes(instance, part2,
                                             config.drop_params.mc_samples, drop_rng);
      }
      const DropContext ctx{&instance, &part2, &predicted2, &optimistic,
                            config.drop == DropPolicyKind::kProbabilistic ? &samples
                                                                          : nullptr};
      // Phase 1: ask the policy about every live task. Completion estimates
      // reflect the *incumbent* (pre-drop) schedule, so in heavy
      // oversubscription everything looks doomed at once — acting on all
      // proposals in one round is a death spiral that cancels tasks the
      // post-drop schedule could have saved.
      std::vector<DropDecision> decisions;
      for (const TaskId t : topo) {
        if (frozen[t] != 0 || dropped[t] != 0) continue;
        decisions.push_back(policy->decide(ctx, t, instance.deadline[t]));
      }
      // Phase 2: triage budget. Only the ceil(cap x live) most hopeless
      // proposals (lowest completion probability, then worst deadline margin)
      // are acted on this round; the rest stay live, and the next resolve
      // re-estimates them on the lightened schedule.
      const std::size_t live = decisions.size();
      const std::size_t budget = static_cast<std::size_t>(
          std::ceil(config.drop_fraction_cap * static_cast<double>(live)));
      // A proposal is actionable only when every live descendant is itself
      // proposed: descendant closure then starves nothing that still had a
      // chance, so a drop can only free capacity, never forfeit value. (A
      // frozen task cannot follow a live one, so successors of a live task
      // are live or already dropped.)
      IdVector<TaskId, std::uint8_t> actionable(n, 0);
      for (const DropDecision& d : decisions) {
        if (d.dropped) actionable[d.task] = 1;
      }
      for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const TaskId ti = *it;
        if (actionable[ti] == 0) continue;
        for (const EdgeRef& e : graph.successors(ti)) {
          if (dropped[e.task] == 0 && actionable[e.task] == 0) {
            actionable[ti] = 0;
            break;
          }
        }
      }
      std::vector<std::size_t> proposals;
      for (std::size_t i = 0; i < decisions.size(); ++i) {
        if (decisions[i].dropped && actionable[decisions[i].task] != 0) {
          proposals.push_back(i);
        } else {
          decisions[i].dropped = false;  // not actionable this round
        }
      }
      std::sort(proposals.begin(), proposals.end(),
                [&decisions](std::size_t a, std::size_t b) {
                  const DropDecision& da = decisions[a];
                  const DropDecision& db = decisions[b];
                  if (da.completion_prob != db.completion_prob) {
                    return da.completion_prob < db.completion_prob;
                  }
                  const double ma = da.deadline - da.estimated_finish;
                  const double mb = db.deadline - db.estimated_finish;
                  if (ma != mb) return ma < mb;
                  return da.task < db.task;
                });
      for (std::size_t i = budget; i < proposals.size(); ++i) {
        decisions[proposals[i]].dropped = false;  // spared this round
      }
      for (std::size_t i = 0; i < std::min(budget, proposals.size()); ++i) {
        dropped[decisions[proposals[i]].task] = 1;
      }
      // Phase 3: descendant closure in topological order — a drop (this
      // round's or an earlier one's) starves everything downstream.
      for (DropDecision& d : decisions) {
        if (dropped[d.task] == 0) {
          for (const EdgeRef& e : graph.predecessors(d.task)) {
            if (dropped[e.task] != 0) {
              d.dropped = true;
              d.forced = true;
              d.completion_prob = 0.0;
              dropped[d.task] = 1;
              break;
            }
          }
        }
        if (d.dropped) ++rec.dropped_new;
        rec.drops.push_back(d);
      }
    }

    // --- Re-solve the remaining tasks with the GA. ---
    // Frozen and dropped tasks are nailed down through the cost matrix: their
    // pinned processor carries the realized (resp. a token) duration, every
    // other processor a penalty no optimal chromosome can afford. The
    // projection below overrides their placement anyway; the penalties only
    // keep the GA's search signal clean. Both magnitudes are chosen for
    // float hygiene, not semantics: the penalty stays within a few orders of
    // the real horizon (absolute epsilons in the timing code must remain
    // meaningful), and dropped placeholders get a small POSITIVE duration —
    // zero-duration tasks tie on start times, and tie-breaking inside the
    // insertion builder can then sequence a successor before its predecessor.
    Matrix<double> costs(n, m);
    const double scale = std::max(1.0, planned_makespan);
    const double penalty = 1e3 * scale;
    const double token = 1e-6 * scale;
    for (const TaskId t : id_range<TaskId>(n)) {
      const std::size_t pinned = cur.proc_of(t).index();
      for (std::size_t p = 0; p < m; ++p) {
        if (frozen[t] != 0) {
          costs(t.index(), p) = p == pinned ? frozen_finish[t] - frozen_start[t] : penalty;
        } else if (dropped[t] != 0) {
          costs(t.index(), p) = p == pinned ? token : penalty;
        } else {
          costs(t.index(), p) = instance.expected(t.index(), p);
        }
      }
    }
    GaConfig ga = config.ga;
    ga.objective = ObjectiveKind::kMinimizeMakespan;
    ga.seed = hash_combine_u64(config.ga.seed, result.resolves);
    ga.seeds.clear();
    if (config.warm_start) {
      ga.seeds.push_back(encode_schedule(graph, platform, cur, costs));
    }
    const GaResult sol = run_ga(graph, platform, costs, ga);
    rec.ga_iterations = sol.iterations;
    result.ga_iterations_total += sol.iterations;

    // --- Project the winner back onto the frozen prefix. ---
    // Per processor: frozen history (in execution order), then the remaining
    // tasks the chromosome assigns there (in scheduling-string order), then
    // the dropped placeholders. Acyclic because the frozen set is
    // predecessor-closed, the dropped set descendant-closed, and the
    // scheduling string is precedence-legal.
    ScheduleBuilder builder(n, m);
    for (const ProcId p : id_range<ProcId>(m)) {
      for (const TaskId t : cur.sequence(p)) {
        if (frozen[t] != 0) builder.append(p, t);
      }
    }
    for (const TaskId t : sol.best.order) {
      if (frozen[t] == 0 && dropped[t] == 0) {
        builder.append(sol.best.assignment[t], t);
      }
    }
    for (const TaskId t : sol.best.order) {
      if (dropped[t] != 0) builder.append(cur.proc_of(t), t);
    }
    cur = std::move(builder).build();
    ++result.resolves;

    const IdVector<TaskId, double> edur3 =
        live_durations(instance.expected, cur, frozen, dropped);
    const PartialSchedule revised{cur,          frozen,        dropped,
                                  frozen_start, frozen_finish, decision_time};
    rec.frozen = revised.frozen_count();
    rec.resolved_makespan =
        // rts-lint: allow(no-scalar-mc-in-loop) — per-event record keeping.
        partial_timing(graph, platform, revised, edur3).makespan;
    result.decisions.push_back(std::move(rec));

    if (config.validate || check_mode_enabled()) {
      const ValidationReport report =
          ScheduleValidator(graph, platform).validate_partial(revised, edur3);
      RTS_ENSURE(report.ok(),
                 "online reschedule produced an invalid partial schedule:\n" +
                     report.to_string());
    }
  }
}

ReschedEvalReport evaluate_resched(const ProblemInstance& instance, const Schedule& plan,
                                   const ReschedConfig& config,
                                   const ReschedEvalConfig& mc) {
  RTS_REQUIRE(mc.realizations > 0, "need at least one realization");
  instance.validate();
  const std::size_t n = instance.task_count();
  const std::size_t m = instance.proc_count();

  struct RunStats {
    double makespan = 0.0;
    double miss_fraction = 0.0;
    double value = 0.0;
    double dropped = 0.0;
    double resolves = 0.0;
    double ga_iterations = 0.0;
  };
  std::vector<RunStats> runs(mc.realizations);
  const Rng root(mc.seed);
  const auto total = static_cast<std::int64_t>(mc.realizations);
#ifdef RTS_HAVE_OPENMP
  const int thread_count =
      mc.threads > 0 ? static_cast<int>(mc.threads) : omp_get_max_threads();
#pragma omp parallel num_threads(thread_count) default(none) \
    shared(instance, plan, config, n, m, total, root, runs)
#endif
  {
    Matrix<double> realized(n, m);
#ifdef RTS_HAVE_OPENMP
#pragma omp for schedule(static)
#endif
    for (std::int64_t i = 0; i < total; ++i) {
      Rng rng = root.substream(static_cast<std::uint64_t>(i));
      for (std::size_t t = 0; t < n; ++t) {
        for (std::size_t p = 0; p < m; ++p) {
          realized(t, p) =
              sample_realized_duration(rng, instance.bcet(t, p), instance.ul(t, p));
        }
      }
      ReschedConfig run_config = config;
      run_config.drop_seed = hash_combine_u64(config.drop_seed, static_cast<std::uint64_t>(i));
      run_config.ga.seed =
          hash_combine_u64(config.ga.seed ^ 0x6a5eedull, static_cast<std::uint64_t>(i));
      run_config.ga.threads = 1;  // the realization loop owns the parallelism
      const ReschedRunResult run =
          run_online_reschedule(instance, plan, realized, run_config);
      RunStats& s = runs[static_cast<std::size_t>(i)];
      s.makespan = run.makespan;
      s.miss_fraction =
          static_cast<double>(run.deadline_misses) / static_cast<double>(n);
      s.value = run.value_accrued;
      s.dropped = static_cast<double>(
          std::count(run.dropped.begin(), run.dropped.end(), std::uint8_t{1}));
      s.resolves = static_cast<double>(run.resolves);
      s.ga_iterations = static_cast<double>(run.ga_iterations_total);
    }
  }

  ReschedEvalReport report;
  report.realizations = mc.realizations;
  for (const TaskId t : id_range<TaskId>(n)) {
    report.value_possible += instance.task_value(t);
  }
  const double denom = static_cast<double>(mc.realizations);
  for (const RunStats& s : runs) {
    report.mean_makespan += s.makespan / denom;
    report.deadline_miss_rate += s.miss_fraction / denom;
    report.mean_value_accrued += s.value / denom;
    report.mean_dropped += s.dropped / denom;
    report.mean_resolves += s.resolves / denom;
    report.mean_ga_iterations += s.ga_iterations / denom;
  }
  return report;
}

}  // namespace rts
