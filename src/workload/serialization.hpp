#pragma once
// Plain-text persistence of problem instances and schedules so experiments
// can be archived and replayed (and so examples can ship fixed inputs).
// Format: a line-oriented `rts-problem v1` / `rts-schedule v1` document; see
// serialization.cpp for the exact grammar.

#include <iosfwd>
#include <string>

#include "sched/schedule.hpp"
#include "workload/problem.hpp"

namespace rts {

/// Write `instance` to a stream / file.
void save_problem(std::ostream& os, const ProblemInstance& instance);
void save_problem_file(const std::string& path, const ProblemInstance& instance);

/// Parse an instance; throws InvalidArgument on malformed input. The loaded
/// instance is validated before being returned.
ProblemInstance load_problem(std::istream& is);
ProblemInstance load_problem_file(const std::string& path);

/// Write / read a schedule (task count + per-processor sequences).
void save_schedule(std::ostream& os, const Schedule& schedule);
Schedule load_schedule(std::istream& is);

}  // namespace rts
