#pragma once
// Structured application topologies used by the examples and tests: the
// classic kernels of the DAG-scheduling literature (Gaussian elimination,
// FFT — both appear in the HEFT paper's evaluation), fork-join and wavefront
// pipelines, and a Montage-like astronomy workflow. Every generator takes a
// uniform edge data size; execution-time matrices come from the COV model.

#include "graph/task_graph.hpp"

namespace rts {

/// Gaussian elimination DAG for a k x k matrix (k >= 2): one pivot task per
/// step and one update task per remaining column, (k^2 + k - 2) / 2 tasks
/// total, with the standard pivot->update and update->next-step dependencies.
TaskGraph gaussian_elimination_graph(std::size_t k, double edge_data);

/// Butterfly FFT dataflow on `points` inputs (must be a power of two >= 2):
/// log2(points) + 1 ranks of `points` tasks; task (l, i) feeds (l+1, i) and
/// (l+1, i XOR 2^l).
TaskGraph fft_graph(std::size_t points, double edge_data);

/// `stages` sequential fork-join diamonds: fork task -> `branches` parallel
/// tasks -> join task (the join doubles as the next stage's fork input).
TaskGraph fork_join_graph(std::size_t branches, std::size_t stages, double edge_data);

/// Wavefront / stencil pipeline: `depth` rows of `width` tasks; task (d, w)
/// depends on (d-1, w-1), (d-1, w) and (d-1, w+1) where they exist.
TaskGraph wavefront_graph(std::size_t width, std::size_t depth, double edge_data);

/// Tiled right-looking Cholesky factorization of a k x k block matrix
/// (k >= 2): POTRF on each diagonal block, TRSM on each sub-diagonal block,
/// SYRK/GEMM trailing updates — k + k(k-1) + k(k-1)(k-2)/6 tasks with the
/// exact dataflow dependencies of the classic tiled algorithm (the dense
/// linear-algebra workload of PLASMA/DPLASMA-style runtimes).
TaskGraph cholesky_graph(std::size_t k, double edge_data);

/// Montage-like astronomy mosaic workflow over `inputs` images:
/// per-image reprojection -> pairwise overlap fits (between consecutive
/// images) -> a single model task -> per-image background correction ->
/// a single co-add -> a final output task.
TaskGraph montage_like_graph(std::size_t inputs, double edge_data);

}  // namespace rts
