#pragma once
// Uncertainty model of the paper's Section 5.
//
// UL_(i,p) is the uncertainty level of task i on processor p. The realized
// execution time is c_(i,p) ~ U(b_(i,p), (2*UL_(i,p) - 1) * b_(i,p)), whose
// mean is UL_(i,p) * b_(i,p) — the expected duration schedulers plan with.
//
// The UL matrix itself is generated with the same two-stage gamma scheme as
// the COV cost model: per-task expected levels q_i ~ Gamma(1/V1^2, UL*V1^2),
// then UL_(i,p) ~ Gamma(1/V2^2, q_i*V2^2), with V1 = V2 = 0.5.
//
// Substitution note (documented in DESIGN.md): the gamma stages can produce
// values below 1, for which U(b, (2UL-1)b) would be ill-formed (upper bound
// below the lower bound) — the paper does not discuss this corner, so we
// clamp every UL to >= 1.0 ("no uncertainty" at the BCET floor).

#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace rts {

/// Parameters of the two-stage UL matrix generation.
struct UncertaintyParams {
  double avg_ul = 2.0;  ///< graph-average uncertainty level (paper sweeps 2..8)
  double v1 = 0.5;      ///< COV of the per-task stage
  double v2 = 0.5;      ///< COV of the per-processor stage
};

/// Generate an n x m uncertainty-level matrix, every entry >= 1.
Matrix<double> generate_ul_matrix(std::size_t task_count, std::size_t proc_count,
                                  const UncertaintyParams& params, Rng& rng);

/// One realized duration: U(bcet, (2*ul - 1) * bcet). Requires ul >= 1.
double sample_realized_duration(Rng& rng, double bcet, double ul);

/// Expected duration of the realized-duration law: ul * bcet.
inline double expected_duration(double bcet, double ul) noexcept { return ul * bcet; }

}  // namespace rts
