#include "workload/cov_model.hpp"

#include "util/distributions.hpp"
#include "util/error.hpp"

namespace rts {

std::vector<double> draw_task_baselines(std::size_t task_count, const CovModelParams& params,
                                        Rng& rng) {
  RTS_REQUIRE(task_count > 0, "task count must be positive");
  RTS_REQUIRE(params.mu_task > 0.0, "mu_task must be positive");
  std::vector<double> q(task_count);
  for (auto& x : q) x = sample_gamma_mean_cov(rng, params.mu_task, params.v_task);
  return q;
}

Matrix<double> generate_cov_cost_matrix(std::size_t task_count, std::size_t proc_count,
                                        const CovModelParams& params, Rng& rng) {
  RTS_REQUIRE(proc_count > 0, "processor count must be positive");
  const auto q = draw_task_baselines(task_count, params, rng);
  Matrix<double> costs(task_count, proc_count);
  for (std::size_t t = 0; t < task_count; ++t) {
    for (std::size_t p = 0; p < proc_count; ++p) {
      costs(t, p) = sample_gamma_mean_cov(rng, q[t], params.v_mach);
    }
  }
  return costs;
}

}  // namespace rts
