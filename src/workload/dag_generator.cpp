#include "workload/dag_generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/distributions.hpp"
#include "util/error.hpp"

namespace rts {

std::vector<std::size_t> draw_level_sizes(const DagGeneratorParams& params, Rng& rng) {
  RTS_REQUIRE(params.task_count > 0, "task count must be positive");
  RTS_REQUIRE(params.shape_alpha > 0.0, "shape alpha must be positive");
  const double sqrt_n = std::sqrt(static_cast<double>(params.task_count));

  // Height ~ U(1, 2*sqrt(n)/alpha) (mean sqrt(n)/alpha, Topcuoglu-style),
  // capped by the task count so every level can be non-empty.
  const double mean_height = sqrt_n / params.shape_alpha;
  auto height = static_cast<std::size_t>(
      sample_uniform_int(rng, 1, std::max<std::int64_t>(1, std::llround(2.0 * mean_height))));
  height = std::min(height, params.task_count);

  // Widths ~ U(1, 2*alpha*sqrt(n)) per level, then rescaled to sum to n while
  // keeping every level >= 1 task.
  const double mean_width = params.shape_alpha * sqrt_n;
  std::vector<double> raw(height);
  double raw_sum = 0.0;
  for (auto& w : raw) {
    w = static_cast<double>(
        sample_uniform_int(rng, 1, std::max<std::int64_t>(1, std::llround(2.0 * mean_width))));
    raw_sum += w;
  }

  std::vector<std::size_t> sizes(height, 1);
  std::size_t assigned = height;
  // Distribute the remaining n - height tasks proportionally to the raw
  // widths (largest-remainder style, deterministic given the draw).
  const std::size_t remaining = params.task_count - std::min(params.task_count, height);
  std::vector<double> fractional(height);
  for (std::size_t l = 0; l < height; ++l) {
    const double share = raw[l] / raw_sum * static_cast<double>(remaining);
    const auto whole = static_cast<std::size_t>(share);
    sizes[l] += whole;
    assigned += whole;
    fractional[l] = share - static_cast<double>(whole);
  }
  // Hand out the leftover units to the largest fractional shares.
  std::vector<std::size_t> order(height);
  for (std::size_t l = 0; l < height; ++l) order[l] = l;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return fractional[a] > fractional[b]; });
  for (std::size_t k = 0; assigned < params.task_count; ++k, ++assigned) {
    sizes[order[k % height]] += 1;
  }
  RTS_ENSURE(std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}) == params.task_count,
             "level sizes must sum to the task count");
  return sizes;
}

TaskGraph generate_random_dag(const DagGeneratorParams& params, const Platform& platform,
                              Rng& rng) {
  RTS_REQUIRE(params.ccr >= 0.0, "ccr must be non-negative");
  RTS_REQUIRE(params.avg_comp_cost > 0.0, "average computation cost must be positive");
  RTS_REQUIRE(params.jump >= 1, "jump must be at least 1");

  const auto sizes = draw_level_sizes(params, rng);
  const std::size_t height = sizes.size();

  // Tasks are numbered level by level; level_start[l] is the first id of
  // level l.
  std::vector<std::size_t> level_start(height + 1, 0);
  for (std::size_t l = 0; l < height; ++l) level_start[l + 1] = level_start[l] + sizes[l];

  TaskGraph graph(params.task_count);

  // Mean data size such that the platform-average communication cost of an
  // edge equals ccr * avg_comp_cost. Data ~ U(0, 2*mean) keeps the mean while
  // varying individual transfers. With a single processor no communication
  // ever happens; data sizes are zero.
  const double avg_rate = platform.average_transfer_rate();
  const double mean_data = std::isinf(avg_rate)
                               ? 0.0
                               : params.ccr * params.avg_comp_cost * avg_rate;

  const auto draw_data = [&]() {
    // rts-lint: allow(no-float-eq) — exact-zero mean disables data flow.
    return mean_data == 0.0 ? 0.0 : sample_uniform(rng, 0.0, 2.0 * mean_data);
  };

  for (std::size_t l = 1; l < height; ++l) {
    const std::size_t lo_level = l >= params.jump ? l - params.jump : 0;
    const std::size_t pool_lo = level_start[lo_level];
    const std::size_t pool_hi = level_start[l];  // exclusive
    const std::size_t pool = pool_hi - pool_lo;
    for (std::size_t t = level_start[l]; t < level_start[l + 1]; ++t) {
      // 1..max_in_degree distinct predecessors from the reachable window.
      const auto want = static_cast<std::size_t>(sample_uniform_int(
          rng, 1, static_cast<std::int64_t>(std::min(params.max_in_degree, pool))));
      std::size_t added = 0;
      std::size_t attempts = 0;
      while (added < want && attempts < 8 * want) {
        ++attempts;
        const auto src =
            pool_lo + static_cast<std::size_t>(rng.next_below(pool));
        if (!graph.has_edge(static_cast<TaskId>(src), static_cast<TaskId>(t))) {
          graph.add_edge(static_cast<TaskId>(src), static_cast<TaskId>(t), draw_data());
          ++added;
        }
      }
      RTS_ENSURE(added >= 1, "non-entry task must receive at least one predecessor");
    }
  }
  return graph;
}

}  // namespace rts
