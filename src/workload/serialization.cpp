#include "workload/serialization.hpp"

#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace rts {

namespace {

// Sanity caps applied while parsing untrusted files: a corrupt or malicious
// size field must raise InvalidArgument, not attempt a huge allocation.
constexpr std::size_t kMaxTasks = 1u << 22;      // ~4M tasks
constexpr std::size_t kMaxProcs = 1u << 14;      // 16k processors
constexpr std::size_t kMaxEdges = 1u << 26;      // ~64M edges

void expect_token(std::istream& is, const std::string& expected) {
  std::string token;
  is >> token;
  RTS_REQUIRE(is.good() && token == expected,
              "malformed document: expected '" + expected + "', got '" + token + "'");
}

template <typename T>
T read_value(std::istream& is, const char* what) {
  T value{};
  is >> value;
  RTS_REQUIRE(!is.fail(), std::string("malformed document: cannot read ") + what);
  return value;
}

void write_matrix(std::ostream& os, const Matrix<double>& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      os << (c ? " " : "") << m(r, c);
    }
    os << '\n';
  }
}

Matrix<double> read_matrix(std::istream& is, std::size_t rows, std::size_t cols,
                           const char* what) {
  Matrix<double> m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(r, c) = read_value<double>(is, what);
    }
  }
  return m;
}

}  // namespace

void save_problem(std::ostream& os, const ProblemInstance& instance) {
  instance.validate();
  const std::size_t n = instance.task_count();
  const std::size_t m = instance.proc_count();
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << "rts-problem v1\n";
  os << "tasks " << n << "\n";
  os << "procs " << m << "\n";
  os << "rates\n";
  for (std::size_t p = 0; p < m; ++p) {
    for (std::size_t q = 0; q < m; ++q) {
      // The diagonal is +inf (meaningless); store a placeholder 0.
      const double rate = p == q ? 0.0
                                 : instance.platform.transfer_rate(static_cast<ProcId>(p),
                                                                   static_cast<ProcId>(q));
      os << (q ? " " : "") << rate;
    }
    os << '\n';
  }
  os << "edges " << instance.graph.edge_count() << "\n";
  for (const TaskId t : id_range<TaskId>(n)) {
    for (const EdgeRef& e : instance.graph.successors(t)) {
      os << t << ' ' << e.task << ' ' << e.data << '\n';
    }
  }
  os << "bcet\n";
  write_matrix(os, instance.bcet);
  os << "ul\n";
  write_matrix(os, instance.ul);
  os << "names\n";
  for (const TaskId t : id_range<TaskId>(n)) {
    os << instance.graph.task_name(t) << '\n';
  }
  // Optional trailing sections (absent for deadline-free workloads so that
  // documents stay readable by pre-deadline parsers of this format).
  if (!instance.deadline.empty()) {
    os << "deadlines\n";
    bool first = true;
    for (const double d : instance.deadline) {
      os << (first ? "" : " ") << d;
      first = false;
    }
    os << '\n';
  }
  if (!instance.value.empty()) {
    os << "values\n";
    bool first = true;
    for (const double v : instance.value) {
      os << (first ? "" : " ") << v;
      first = false;
    }
    os << '\n';
  }
}

ProblemInstance load_problem(std::istream& is) {
  expect_token(is, "rts-problem");
  expect_token(is, "v1");
  expect_token(is, "tasks");
  const auto n = read_value<std::size_t>(is, "task count");
  RTS_REQUIRE(n > 0 && n <= kMaxTasks, "task count out of range");
  expect_token(is, "procs");
  const auto m = read_value<std::size_t>(is, "processor count");
  RTS_REQUIRE(m > 0 && m <= kMaxProcs, "processor count out of range");

  expect_token(is, "rates");
  Platform platform(m);
  for (std::size_t p = 0; p < m; ++p) {
    for (std::size_t q = 0; q < m; ++q) {
      const auto rate = read_value<double>(is, "transfer rate");
      if (p != q) platform.set_transfer_rate(static_cast<ProcId>(p),
                                             static_cast<ProcId>(q), rate);
    }
  }

  expect_token(is, "edges");
  const auto edge_count = read_value<std::size_t>(is, "edge count");
  RTS_REQUIRE(edge_count <= kMaxEdges, "edge count out of range");
  TaskGraph graph(n);
  for (std::size_t e = 0; e < edge_count; ++e) {
    const TaskId src = read_value<std::int32_t>(is, "edge source");
    const TaskId dst = read_value<std::int32_t>(is, "edge target");
    const auto data = read_value<double>(is, "edge data");
    graph.add_edge(src, dst, data);
  }

  expect_token(is, "bcet");
  Matrix<double> bcet = read_matrix(is, n, m, "bcet entry");
  expect_token(is, "ul");
  Matrix<double> ul = read_matrix(is, n, m, "ul entry");

  expect_token(is, "names");
  is >> std::ws;
  for (const TaskId t : id_range<TaskId>(n)) {
    std::string name;
    std::getline(is, name);
    RTS_REQUIRE(!is.fail() && !name.empty(), "missing task name");
    graph.set_task_name(t, name);
  }

  // Optional trailing sections, in any order, each at most once.
  IdVector<TaskId, double> deadline;
  IdVector<TaskId, double> value;
  std::string section;
  while (is >> section) {
    if (section == "deadlines") {
      RTS_REQUIRE(deadline.empty(), "malformed document: duplicate deadlines section");
      deadline.resize(n);
      for (auto& d : deadline) d = read_value<double>(is, "deadline entry");
    } else if (section == "values") {
      RTS_REQUIRE(value.empty(), "malformed document: duplicate values section");
      value.resize(n);
      for (auto& v : value) v = read_value<double>(is, "value entry");
    } else {
      RTS_REQUIRE(false, "malformed document: unknown section '" + section + "'");
    }
  }

  ProblemInstance instance{std::move(graph),    std::move(platform),
                           std::move(bcet),     std::move(ul),
                           Matrix<double>{},    std::move(deadline),
                           std::move(value)};
  instance.expected = expected_costs(instance.bcet, instance.ul);
  instance.validate();
  return instance;
}

void save_problem_file(const std::string& path, const ProblemInstance& instance) {
  std::ofstream out(path);
  RTS_REQUIRE(out.good(), "cannot open file for writing: " + path);
  save_problem(out, instance);
  RTS_REQUIRE(out.good(), "write failure on: " + path);
}

ProblemInstance load_problem_file(const std::string& path) {
  std::ifstream in(path);
  RTS_REQUIRE(in.good(), "cannot open file for reading: " + path);
  return load_problem(in);
}

void save_schedule(std::ostream& os, const Schedule& schedule) {
  os << "rts-schedule v1\n";
  os << "tasks " << schedule.task_count() << "\n";
  os << "procs " << schedule.proc_count() << "\n";
  for (const ProcId p : id_range<ProcId>(schedule.proc_count())) {
    const auto seq = schedule.sequence(p);
    os << "seq " << seq.size();
    for (const TaskId t : seq) os << ' ' << t;
    os << '\n';
  }
}

Schedule load_schedule(std::istream& is) {
  expect_token(is, "rts-schedule");
  expect_token(is, "v1");
  expect_token(is, "tasks");
  const auto n = read_value<std::size_t>(is, "task count");
  RTS_REQUIRE(n > 0 && n <= kMaxTasks, "task count out of range");
  expect_token(is, "procs");
  const auto m = read_value<std::size_t>(is, "processor count");
  RTS_REQUIRE(m > 0 && m <= kMaxProcs, "processor count out of range");
  ScheduleBuilder builder(n, m);
  for (std::size_t p = 0; p < m; ++p) {
    expect_token(is, "seq");
    const auto len = read_value<std::size_t>(is, "sequence length");
    RTS_REQUIRE(len <= n, "sequence length exceeds task count");
    for (std::size_t i = 0; i < len; ++i) {
      builder.append(static_cast<ProcId>(p),
                     TaskId{read_value<std::int32_t>(is, "sequence entry")});
    }
  }
  return std::move(builder).build();
}

}  // namespace rts
