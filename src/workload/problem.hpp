#pragma once
// A complete robust-scheduling problem instance: the application DAG, the
// heterogeneous platform, the best-case execution time matrix B, the
// uncertainty-level matrix UL, and the derived expected-duration matrix
// E = UL ∘ B that deterministic schedulers consume (paper Sections 3.1, 5).

#include "graph/task_graph.hpp"
#include "platform/platform.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace rts {

/// Bundled problem instance. Invariants: bcet/ul/expected are n x m with
/// n = graph.task_count(), m = platform.proc_count(); all entries positive;
/// ul entries >= 1 so that the realized-duration law U(b, (2UL-1)b) is well
/// formed with mean UL*b. The optional deadline/value vectors back the
/// oversubscription scenarios of src/resched: either empty (no deadlines,
/// unit values — every pre-existing workload) or size n with positive finite
/// entries.
struct ProblemInstance {
  TaskGraph graph;
  Platform platform;
  Matrix<double> bcet;      ///< B: best-case execution times
  Matrix<double> ul;        ///< UL: per-(task, processor) uncertainty levels
  Matrix<double> expected;  ///< E(i,p) = ul(i,p) * bcet(i,p)

  /// Per-task absolute completion deadlines; empty means "no deadlines".
  IdVector<TaskId, double> deadline{};
  /// Per-task values accrued on on-time completion; empty means unit values.
  IdVector<TaskId, double> value{};

  [[nodiscard]] std::size_t task_count() const noexcept { return graph.task_count(); }
  [[nodiscard]] std::size_t proc_count() const noexcept { return platform.proc_count(); }

  [[nodiscard]] bool has_deadlines() const noexcept { return !deadline.empty(); }

  /// Value of one task, defaulting to 1 when the value vector is absent.
  [[nodiscard]] double task_value(TaskId t) const {
    return value.empty() ? 1.0 : value[t];
  }

  /// Throws InvalidArgument when any invariant above is violated.
  void validate() const;
};

/// E = UL ∘ B (elementwise product).
Matrix<double> expected_costs(const Matrix<double>& bcet, const Matrix<double>& ul);

/// Parameters of the paper's Section 5 experimental setup. Quantities the
/// paper leaves unspecified (processor count, transfer rates) get sensible
/// defaults documented in DESIGN.md.
struct PaperInstanceParams {
  std::size_t task_count = 100;  ///< n
  double shape_alpha = 1.0;      ///< α
  double avg_comp_cost = 20.0;   ///< cc == μ_task
  double ccr = 0.1;              ///< communication-to-computation ratio
  double v_task = 0.5;           ///< task heterogeneity (COV method)
  double v_mach = 0.5;           ///< machine heterogeneity (COV method)
  double avg_ul = 2.0;           ///< average uncertainty level of the graph
  double v_ul = 0.5;             ///< V1 == V2 of the two-stage UL generation
  std::size_t proc_count = 8;    ///< m (paper unspecified; default 8)
  double transfer_rate = 1.0;    ///< uniform link rate (paper unspecified)
};

/// Draw one full instance of the paper's experimental setup.
ProblemInstance make_paper_instance(const PaperInstanceParams& params, Rng& rng);

}  // namespace rts
