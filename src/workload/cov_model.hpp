#pragma once
// Coefficient-of-variation-based execution-time matrix generation following
// Ali, Siegel, Maheswaran, Hensgen & Ali, "Task execution time modeling for
// heterogeneous computing systems" (HCW 2000) — the method the paper's
// Section 5 uses to build the BCET matrix B.
//
// Two-stage gamma sampling:
//   q_i    ~ Gamma(mean = mu_task, COV = v_task)   (per-task baseline)
//   b_(i,p) ~ Gamma(mean = q_i,    COV = v_mach)   (per-machine variation)
//
// v_task controls task heterogeneity (how much execution times vary across
// tasks on one machine) and v_mach machine heterogeneity (variation across
// machines for one task). The paper sets mu_task = cc = 20 and
// v_task = v_mach = 0.5 ("medium" heterogeneity).

#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace rts {

/// Parameters of the COV generation method.
struct CovModelParams {
  double mu_task = 20.0;  ///< mean task execution time (the paper's cc)
  double v_task = 0.5;    ///< task heterogeneity COV
  double v_mach = 0.5;    ///< machine heterogeneity COV
};

/// Generate an n x m execution-time matrix. All entries are strictly
/// positive. Deterministic in (params, rng state).
Matrix<double> generate_cov_cost_matrix(std::size_t task_count, std::size_t proc_count,
                                        const CovModelParams& params, Rng& rng);

/// The per-task baselines q_i of the first stage (exposed for tests that
/// check the heterogeneity statistics of the method).
std::vector<double> draw_task_baselines(std::size_t task_count, const CovModelParams& params,
                                        Rng& rng);

}  // namespace rts
