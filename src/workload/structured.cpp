#include "workload/structured.hpp"

#include <string>
#include <vector>

#include "util/error.hpp"

namespace rts {

namespace {
// Builds names like "upd3_7" without `const char* + std::string&&`, which
// trips a GCC 12 -Wrestrict false positive (PR 105329).
std::string task_label(const char* prefix, std::size_t a) {
  std::string s(prefix);
  s += std::to_string(a);
  return s;
}
std::string task_label(const char* prefix, std::size_t a, const char* mid, std::size_t b) {
  std::string s(prefix);
  s += std::to_string(a);
  s += mid;
  s += std::to_string(b);
  return s;
}
}  // namespace


TaskGraph gaussian_elimination_graph(std::size_t k, double edge_data) {
  RTS_REQUIRE(k >= 2, "gaussian elimination needs k >= 2");
  // Steps i = 0..k-2. Step i has a pivot task and update tasks for columns
  // j = i+1..k-1. id layout: sequential in (step, column) order.
  const std::size_t n = (k * k + k - 2) / 2;
  TaskGraph graph(n);

  // id of step i's pivot; its updates follow immediately.
  std::vector<std::size_t> pivot_id(k - 1);
  std::size_t next = 0;
  for (std::size_t i = 0; i + 1 < k; ++i) {
    pivot_id[i] = next;
    graph.set_task_name(static_cast<TaskId>(next), task_label("piv", i));
    ++next;
    for (std::size_t j = i + 1; j < k; ++j) {
      graph.set_task_name(static_cast<TaskId>(next),
                          task_label("upd", i, "_", j));
      ++next;
    }
  }
  RTS_ENSURE(next == n, "gaussian elimination id layout mismatch");

  const auto update_id = [&](std::size_t i, std::size_t j) {
    return pivot_id[i] + (j - i);  // update (i, j) sits j - i slots after pivot i
  };
  for (std::size_t i = 0; i + 1 < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      // Pivot of step i enables every update of step i.
      graph.add_edge(static_cast<TaskId>(pivot_id[i]),
                     static_cast<TaskId>(update_id(i, j)), edge_data);
      if (i + 2 < k) {
        if (j == i + 1) {
          // Update (i, i+1) produces the next pivot column.
          graph.add_edge(static_cast<TaskId>(update_id(i, j)),
                         static_cast<TaskId>(pivot_id[i + 1]), edge_data);
        } else {
          // Update (i, j) feeds update (i+1, j).
          graph.add_edge(static_cast<TaskId>(update_id(i, j)),
                         static_cast<TaskId>(update_id(i + 1, j)), edge_data);
        }
      }
    }
  }
  return graph;
}

TaskGraph fft_graph(std::size_t points, double edge_data) {
  RTS_REQUIRE(points >= 2 && (points & (points - 1)) == 0,
              "fft size must be a power of two >= 2");
  std::size_t log2n = 0;
  for (std::size_t v = points; v > 1; v >>= 1) ++log2n;
  const std::size_t ranks = log2n + 1;
  TaskGraph graph(points * ranks);
  const auto id = [&](std::size_t level, std::size_t i) { return level * points + i; };
  for (std::size_t level = 0; level < ranks; ++level) {
    for (std::size_t i = 0; i < points; ++i) {
      graph.set_task_name(static_cast<TaskId>(id(level, i)),
                          task_label("f", level, "_", i));
    }
  }
  for (std::size_t level = 0; level + 1 < ranks; ++level) {
    const std::size_t stride = std::size_t{1} << level;
    for (std::size_t i = 0; i < points; ++i) {
      graph.add_edge(static_cast<TaskId>(id(level, i)),
                     static_cast<TaskId>(id(level + 1, i)), edge_data);
      graph.add_edge(static_cast<TaskId>(id(level, i)),
                     static_cast<TaskId>(id(level + 1, i ^ stride)), edge_data);
    }
  }
  return graph;
}

TaskGraph fork_join_graph(std::size_t branches, std::size_t stages, double edge_data) {
  RTS_REQUIRE(branches >= 1 && stages >= 1, "fork-join needs >= 1 branch and stage");
  // Layout per stage: fork, branches..., ; one shared join per stage that is
  // the next stage's fork. Total: stages * (branches + 1) + 1 tasks.
  const std::size_t n = stages * (branches + 1) + 1;
  TaskGraph graph(n);
  std::size_t fork = 0;
  graph.set_task_name(0, "fork0");
  for (std::size_t s = 0; s < stages; ++s) {
    const std::size_t first_branch = fork + 1;
    const std::size_t join = first_branch + branches;
    graph.set_task_name(static_cast<TaskId>(join),
                        s + 1 < stages ? task_label("fork", s + 1)
                                       : std::string("join"));
    for (std::size_t b = 0; b < branches; ++b) {
      const std::size_t t = first_branch + b;
      graph.set_task_name(static_cast<TaskId>(t),
                          task_label("s", s, "b", b));
      graph.add_edge(static_cast<TaskId>(fork), static_cast<TaskId>(t), edge_data);
      graph.add_edge(static_cast<TaskId>(t), static_cast<TaskId>(join), edge_data);
    }
    fork = join;
  }
  return graph;
}

TaskGraph wavefront_graph(std::size_t width, std::size_t depth, double edge_data) {
  RTS_REQUIRE(width >= 1 && depth >= 1, "wavefront needs positive width and depth");
  TaskGraph graph(width * depth);
  const auto id = [&](std::size_t d, std::size_t w) { return d * width + w; };
  for (std::size_t d = 0; d < depth; ++d) {
    for (std::size_t w = 0; w < width; ++w) {
      graph.set_task_name(static_cast<TaskId>(id(d, w)),
                          task_label("w", d, "_", w));
      if (d == 0) continue;
      if (w > 0) graph.add_edge(static_cast<TaskId>(id(d - 1, w - 1)),
                                static_cast<TaskId>(id(d, w)), edge_data);
      graph.add_edge(static_cast<TaskId>(id(d - 1, w)), static_cast<TaskId>(id(d, w)),
                     edge_data);
      if (w + 1 < width) graph.add_edge(static_cast<TaskId>(id(d - 1, w + 1)),
                                        static_cast<TaskId>(id(d, w)), edge_data);
    }
  }
  return graph;
}

TaskGraph cholesky_graph(std::size_t k, double edge_data) {
  RTS_REQUIRE(k >= 2, "cholesky needs k >= 2 blocks");
  const std::size_t n = k + k * (k - 1) + k * (k - 1) * (k - 2) / 6;
  TaskGraph graph(n);

  // last_writer(i, l): the task that last updated block (i, l); kNoTask when
  // the block is still pristine. Only i >= l is used (lower triangle).
  std::vector<TaskId> last_writer(k * k, kNoTask);
  const auto block = [&](std::size_t i, std::size_t l) -> TaskId& {
    return last_writer[i * k + l];
  };
  const auto depend_on_block = [&](std::size_t i, std::size_t l, TaskId reader) {
    const TaskId writer = block(i, l);
    if (writer != kNoTask && !graph.has_edge(writer, reader)) {
      graph.add_edge(writer, reader, edge_data);
    }
  };

  std::size_t next = 0;
  const auto new_task = [&](std::string name) {
    const auto id = static_cast<TaskId>(next++);
    graph.set_task_name(id, std::move(name));
    return id;
  };

  for (std::size_t j = 0; j < k; ++j) {
    // POTRF(j): factor the diagonal block, which was last touched by
    // SYRK(j, j-1) (or nothing when j == 0).
    const TaskId potrf = new_task(task_label("potrf", j));
    depend_on_block(j, j, potrf);
    block(j, j) = potrf;

    // TRSM(i, j): solve against POTRF(j); block (i, j) was last touched by
    // GEMM(i, j, j-1).
    std::vector<TaskId> trsm(k, kNoTask);
    for (std::size_t i = j + 1; i < k; ++i) {
      const TaskId t = new_task(task_label("trsm", i, "_", j));
      graph.add_edge(potrf, t, edge_data);
      depend_on_block(i, j, t);
      block(i, j) = t;
      trsm[i] = t;
    }

    // Trailing updates: SYRK(i, j) on the diagonal, GEMM(i, l, j) below it.
    for (std::size_t i = j + 1; i < k; ++i) {
      const TaskId syrk = new_task(task_label("syrk", i, "_", j));
      graph.add_edge(trsm[i], syrk, edge_data);
      depend_on_block(i, i, syrk);
      block(i, i) = syrk;
      for (std::size_t l = j + 1; l < i; ++l) {
        TaskId gemm = new_task(task_label("gemm", i, "_", l) + task_label("_", j));
        graph.add_edge(trsm[i], gemm, edge_data);
        graph.add_edge(trsm[l], gemm, edge_data);
        depend_on_block(i, l, gemm);
        block(i, l) = gemm;
      }
    }
  }
  RTS_ENSURE(next == n, "cholesky task-count formula mismatch");
  return graph;
}

TaskGraph montage_like_graph(std::size_t inputs, double edge_data) {
  RTS_REQUIRE(inputs >= 2, "montage needs at least two input images");
  // Layout: project[inputs], diff[inputs-1], model, background[inputs],
  // coadd, output.
  const std::size_t project0 = 0;
  const std::size_t diff0 = project0 + inputs;
  const std::size_t model = diff0 + (inputs - 1);
  const std::size_t background0 = model + 1;
  const std::size_t coadd = background0 + inputs;
  const std::size_t output = coadd + 1;
  TaskGraph graph(output + 1);

  for (std::size_t i = 0; i < inputs; ++i) {
    graph.set_task_name(static_cast<TaskId>(project0 + i), task_label("proj", i));
    graph.set_task_name(static_cast<TaskId>(background0 + i), task_label("bg", i));
  }
  for (std::size_t i = 0; i + 1 < inputs; ++i) {
    graph.set_task_name(static_cast<TaskId>(diff0 + i), task_label("diff", i));
  }
  graph.set_task_name(static_cast<TaskId>(model), "model");
  graph.set_task_name(static_cast<TaskId>(coadd), "coadd");
  graph.set_task_name(static_cast<TaskId>(output), "out");

  for (std::size_t i = 0; i + 1 < inputs; ++i) {
    // Each overlap fit consumes two consecutive reprojections.
    graph.add_edge(static_cast<TaskId>(project0 + i), static_cast<TaskId>(diff0 + i),
                   edge_data);
    graph.add_edge(static_cast<TaskId>(project0 + i + 1), static_cast<TaskId>(diff0 + i),
                   edge_data);
    graph.add_edge(static_cast<TaskId>(diff0 + i), static_cast<TaskId>(model), edge_data);
  }
  for (std::size_t i = 0; i < inputs; ++i) {
    graph.add_edge(static_cast<TaskId>(model), static_cast<TaskId>(background0 + i),
                   edge_data);
    // Background correction also needs the reprojected image itself.
    graph.add_edge(static_cast<TaskId>(project0 + i), static_cast<TaskId>(background0 + i),
                   edge_data);
    graph.add_edge(static_cast<TaskId>(background0 + i), static_cast<TaskId>(coadd),
                   edge_data);
  }
  graph.add_edge(static_cast<TaskId>(coadd), static_cast<TaskId>(output), edge_data);
  return graph;
}

}  // namespace rts
