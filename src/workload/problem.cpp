#include "workload/problem.hpp"

#include <cmath>

#include "util/error.hpp"
#include "workload/cov_model.hpp"
#include "workload/dag_generator.hpp"
#include "workload/uncertainty.hpp"

namespace rts {

void ProblemInstance::validate() const {
  graph.validate();
  const std::size_t n = graph.task_count();
  const std::size_t m = platform.proc_count();
  RTS_REQUIRE(bcet.rows() == n && bcet.cols() == m, "bcet matrix has wrong shape");
  RTS_REQUIRE(ul.rows() == n && ul.cols() == m, "ul matrix has wrong shape");
  RTS_REQUIRE(expected.rows() == n && expected.cols() == m,
              "expected matrix has wrong shape");
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t p = 0; p < m; ++p) {
      RTS_REQUIRE(bcet(t, p) > 0.0, "bcet entries must be positive");
      RTS_REQUIRE(ul(t, p) >= 1.0, "uncertainty levels must be >= 1");
      RTS_REQUIRE(expected(t, p) == ul(t, p) * bcet(t, p),
                  "expected must equal ul * bcet elementwise");
    }
  }
  RTS_REQUIRE(deadline.empty() || deadline.size() == n,
              "deadline vector must be empty or one entry per task");
  RTS_REQUIRE(value.empty() || value.size() == n,
              "value vector must be empty or one entry per task");
  for (const double d : deadline) {
    RTS_REQUIRE(d > 0.0 && std::isfinite(d), "deadlines must be positive and finite");
  }
  for (const double v : value) {
    RTS_REQUIRE(v > 0.0 && std::isfinite(v), "task values must be positive and finite");
  }
}

Matrix<double> expected_costs(const Matrix<double>& bcet, const Matrix<double>& ul) {
  RTS_REQUIRE(bcet.rows() == ul.rows() && bcet.cols() == ul.cols(),
              "bcet and ul shapes must match");
  Matrix<double> expected(bcet.rows(), bcet.cols());
  for (std::size_t t = 0; t < bcet.rows(); ++t) {
    for (std::size_t p = 0; p < bcet.cols(); ++p) {
      expected(t, p) = ul(t, p) * bcet(t, p);
    }
  }
  return expected;
}

ProblemInstance make_paper_instance(const PaperInstanceParams& params, Rng& rng) {
  Platform platform(params.proc_count, params.transfer_rate);

  DagGeneratorParams dag_params;
  dag_params.task_count = params.task_count;
  dag_params.shape_alpha = params.shape_alpha;
  dag_params.avg_comp_cost = params.avg_comp_cost;
  dag_params.ccr = params.ccr;
  TaskGraph graph = generate_random_dag(dag_params, platform, rng);

  // The COV method generates execution times with mean mu_task = cc; the
  // paper uses it for the *best-case* matrix B.
  CovModelParams cov;
  cov.mu_task = params.avg_comp_cost;
  cov.v_task = params.v_task;
  cov.v_mach = params.v_mach;
  Matrix<double> bcet =
      generate_cov_cost_matrix(params.task_count, params.proc_count, cov, rng);

  UncertaintyParams unc;
  unc.avg_ul = params.avg_ul;
  unc.v1 = params.v_ul;
  unc.v2 = params.v_ul;
  Matrix<double> ul = generate_ul_matrix(params.task_count, params.proc_count, unc, rng);

  Matrix<double> expected = expected_costs(bcet, ul);
  return ProblemInstance{std::move(graph), std::move(platform), std::move(bcet),
                         std::move(ul), std::move(expected)};
}

}  // namespace rts
