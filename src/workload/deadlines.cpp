#include "workload/deadlines.hpp"

#include "sched/heft.hpp"
#include "sched/timing.hpp"
#include "util/error.hpp"

namespace rts {

void assign_deadlines(ProblemInstance& instance, const DeadlineParams& params, Rng& rng) {
  RTS_REQUIRE(params.oversubscription >= 1.0, "oversubscription level must be >= 1");
  RTS_REQUIRE(params.value_min > 0.0 && params.value_max >= params.value_min,
              "task value range must be positive and non-empty");

  const ListScheduleResult heft =
      heft_schedule(instance.graph, instance.platform, instance.expected);
  const ScheduleTiming timing = compute_schedule_timing(
      instance.graph, instance.platform, heft.schedule, instance.expected);

  const std::size_t n = instance.task_count();
  instance.deadline.resize(n);
  instance.value.resize(n);
  const double floor = 1.0 / params.oversubscription;
  for (const TaskId t : id_range<TaskId>(n)) {
    const double laxity = floor + rng.next_double() * (1.0 - floor);
    instance.deadline[t] = timing.finish[t] * laxity;
    instance.value[t] =
        params.value_min + rng.next_double() * (params.value_max - params.value_min);
  }
}

}  // namespace rts
