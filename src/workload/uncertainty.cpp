#include "workload/uncertainty.hpp"

#include <algorithm>

#include "util/distributions.hpp"
#include "util/error.hpp"

namespace rts {

Matrix<double> generate_ul_matrix(std::size_t task_count, std::size_t proc_count,
                                  const UncertaintyParams& params, Rng& rng) {
  RTS_REQUIRE(task_count > 0 && proc_count > 0, "matrix dimensions must be positive");
  RTS_REQUIRE(params.avg_ul >= 1.0, "average uncertainty level must be >= 1");
  Matrix<double> ul(task_count, proc_count);
  for (std::size_t t = 0; t < task_count; ++t) {
    const double q = sample_gamma_mean_cov(rng, params.avg_ul, params.v1);
    for (std::size_t p = 0; p < proc_count; ++p) {
      // Clamp to >= 1 so the realized-duration law stays well formed (see
      // header note); UL == 1 means the task always runs at its BCET.
      ul(t, p) = std::max(1.0, sample_gamma_mean_cov(rng, q, params.v2));
    }
  }
  return ul;
}

double sample_realized_duration(Rng& rng, double bcet, double ul) {
  RTS_REQUIRE(bcet > 0.0, "best-case execution time must be positive");
  RTS_REQUIRE(ul >= 1.0, "uncertainty level must be >= 1");
  return sample_uniform(rng, bcet, (2.0 * ul - 1.0) * bcet);
}

}  // namespace rts
