#pragma once
// Deadline/value synthesis for oversubscription scenarios (src/resched).
// Real deadline-driven workloads (Mokhtari et al. 2020, Gentry et al. 2019)
// arrive with per-task deadlines and values; the paper's Section 5 generator
// has neither. This module grafts them onto any ProblemInstance in a way
// that yields a controllable oversubscription level.

#include "util/rng.hpp"
#include "workload/problem.hpp"

namespace rts {

struct DeadlineParams {
  /// Oversubscription level λ ≥ 1: each task's deadline is its HEFT finish
  /// time (under expected costs) scaled by a per-task laxity drawn uniformly
  /// from [1/λ, 1]. λ = 1 makes every deadline exactly achievable by the
  /// deterministic HEFT plan; λ = 1.5 mixes tasks demanding the system run
  /// up to 1.5x faster than that plan with near-achievable ones — the
  /// heterogeneous urgency of real oversubscribed workloads, and the regime
  /// where cancelling hopeless tasks frees capacity for borderline ones.
  double oversubscription = 1.5;
  /// Task values are drawn uniformly from [value_min, value_max].
  double value_min = 1.0;
  double value_max = 10.0;
};

/// Fill `instance.deadline` and `instance.value` in place. Deadlines derive
/// from a HEFT schedule of the instance's expected costs; values are drawn
/// from `rng`. Overwrites any existing deadlines/values.
void assign_deadlines(ProblemInstance& instance, const DeadlineParams& params, Rng& rng);

}  // namespace rts
