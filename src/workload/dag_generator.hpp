#pragma once
// Random layered DAG generator in the style of Topcuoglu et al. (TPDS 2002)
// and Shi & Dongarra (FGCS 2006), which the paper's Section 5 cites for its
// workloads. Parameters:
//
//   n      — task count;
//   alpha  — shape: expected graph height is sqrt(n)/alpha and expected level
//            width is alpha*sqrt(n), so alpha > 1 gives short fat graphs
//            (high parallelism) and alpha < 1 tall thin ones;
//   ccr    — communication-to-computation ratio: edge data sizes are drawn so
//            that the mean communication cost across the platform's links is
//            ccr * avg_comp_cost;
//   out_degree / jump / density — connectivity knobs the cited generators
//            expose; defaults reproduce their common settings.
//
// The generator produces the topology and data sizes only; execution-time
// matrices come from the COV model (cov_model.hpp).

#include "graph/task_graph.hpp"
#include "platform/platform.hpp"
#include "util/rng.hpp"

namespace rts {

/// Topology parameters for the random layered DAG generator.
struct DagGeneratorParams {
  std::size_t task_count = 100;
  double shape_alpha = 1.0;
  /// Mean computation cost used only to calibrate edge data sizes via ccr.
  double avg_comp_cost = 20.0;
  /// Target communication-to-computation ratio.
  double ccr = 0.1;
  /// Max extra predecessors per non-entry task (each task always gets at
  /// least one predecessor from an earlier level, keeping the DAG connected
  /// top-down).
  std::size_t max_in_degree = 4;
  /// How many levels upward a predecessor may come from (1 = only the
  /// immediately preceding level).
  std::size_t jump = 2;
};

/// Generate a random DAG topology with edge data sizes calibrated so that the
/// average communication cost on `platform` is ccr * avg_comp_cost.
/// Deterministic in (params, rng state).
TaskGraph generate_random_dag(const DagGeneratorParams& params, const Platform& platform,
                              Rng& rng);

/// The level sizes drawn for a given parameter set (exposed for tests that
/// verify the shape law). Sum equals task_count; every level non-empty.
std::vector<std::size_t> draw_level_sizes(const DagGeneratorParams& params, Rng& rng);

}  // namespace rts
