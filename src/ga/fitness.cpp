#include "ga/fitness.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace rts {

bool is_feasible(const Evaluation& eval, double epsilon, double heft_makespan) {
  return eval.makespan <= epsilon * heft_makespan;
}

std::vector<double> generation_fitness(std::span<const Evaluation> evals,
                                       ObjectiveKind objective, double epsilon,
                                       double heft_makespan) {
  std::vector<double> fitness(evals.size());
  const bool effective = objective == ObjectiveKind::kEpsilonConstraintEffective;
  switch (objective) {
    case ObjectiveKind::kMinimizeMakespan:
      for (std::size_t i = 0; i < evals.size(); ++i) fitness[i] = -evals[i].makespan;
      return fitness;
    case ObjectiveKind::kMaximizeSlack:
      for (std::size_t i = 0; i < evals.size(); ++i) fitness[i] = evals[i].avg_slack;
      return fitness;
    case ObjectiveKind::kEpsilonConstraint:
    case ObjectiveKind::kEpsilonConstraintEffective:
      break;
  }

  RTS_REQUIRE(heft_makespan > 0.0, "epsilon constraint needs the HEFT makespan");
  RTS_REQUIRE(epsilon > 0.0, "epsilon must be positive");
  const double bound = epsilon * heft_makespan;

  const auto objective_value = [effective](const Evaluation& e) {
    return effective ? e.effective_slack : e.avg_slack;
  };
  double min_feasible = std::numeric_limits<double>::infinity();
  bool any_feasible = false;
  for (const Evaluation& e : evals) {
    if (e.makespan <= bound) {
      any_feasible = true;
      min_feasible = std::min(min_feasible, objective_value(e));
    }
  }
  // Eqn. 8's infeasible branch, min_feasible * bound / M0, collapses when
  // the weakest feasible objective value is 0 (common early under a tight
  // ε, where the only feasible individual is the zero-slack HEFT seed):
  // every infeasible individual then scores exactly 0 no matter how large
  // its violation, erasing the selection gradient. We use the algebraically
  // identical form  min_feasible - scale * (1 - bound / M0)  with the scale
  // floored away from 0, so infeasible fitness always sits strictly below
  // every feasible value and still decreases with the violation M0.
  constexpr double kInfeasibleScaleFloor = 1e-3;  // in units of the bound
  const double infeasible_scale =
      std::max(min_feasible, kInfeasibleScaleFloor * bound);
  for (std::size_t i = 0; i < evals.size(); ++i) {
    if (evals[i].makespan <= bound) {
      fitness[i] = objective_value(evals[i]);  // Eqn. 8, feasible branch
    } else if (any_feasible) {
      // Eqn. 8, infeasible branch: scaled below the weakest feasible
      // individual, shrinking with the violation (bound / M0 < 1).
      fitness[i] =
          min_feasible - infeasible_scale * (1.0 - bound / evals[i].makespan);
    } else {
      // Fallback (no feasible individual this generation): rank purely by
      // constraint violation; converges to Eqn. 8 once one appears.
      fitness[i] = bound / evals[i].makespan;
    }
  }
  return fitness;
}

bool better_than(const Evaluation& a, const Evaluation& b, ObjectiveKind objective,
                 double epsilon, double heft_makespan) {
  switch (objective) {
    case ObjectiveKind::kMinimizeMakespan:
      return a.makespan < b.makespan;
    case ObjectiveKind::kMaximizeSlack:
      if (a.avg_slack != b.avg_slack) return a.avg_slack > b.avg_slack;
      return a.makespan < b.makespan;
    case ObjectiveKind::kEpsilonConstraint: {
      const bool fa = is_feasible(a, epsilon, heft_makespan);
      const bool fb = is_feasible(b, epsilon, heft_makespan);
      if (fa != fb) return fa;
      if (!fa) return a.makespan < b.makespan;
      if (a.avg_slack != b.avg_slack) return a.avg_slack > b.avg_slack;
      return a.makespan < b.makespan;
    }
    case ObjectiveKind::kEpsilonConstraintEffective: {
      const bool fa = is_feasible(a, epsilon, heft_makespan);
      const bool fb = is_feasible(b, epsilon, heft_makespan);
      if (fa != fb) return fa;
      if (!fa) return a.makespan < b.makespan;
      if (a.effective_slack != b.effective_slack) {
        return a.effective_slack > b.effective_slack;
      }
      if (a.avg_slack != b.avg_slack) return a.avg_slack > b.avg_slack;
      return a.makespan < b.makespan;
    }
  }
  return false;
}

}  // namespace rts
