#pragma once
// The bi-objective genetic algorithm (paper Section 4.2).
//
// Pipeline per generation: systematic binary tournament selection (each
// individual enters exactly two tournaments), single-point crossover applied
// to a pc fraction of the intermediate population, precedence-window move
// mutation with probability pm per individual, then elitism (the weakest
// individual of the new population is replaced by the best seen so far).
// Initialization draws unique random chromosomes plus, optionally, the HEFT
// solution (Section 4.2.2). Stopping: max_iterations reached, or no
// improvement of the best solution over the last stagnation_window
// iterations (the paper uses 1000 / 100).

#include <cstdint>
#include <functional>
#include <optional>

#include "ga/chromosome.hpp"
#include "ga/eval.hpp"
#include "ga/fitness.hpp"
#include "sched/heft.hpp"
#include "util/matrix.hpp"

namespace rts {

/// GA hyper-parameters; defaults are the paper's Section 5 settings.
struct GaConfig {
  std::size_t population_size = 20;   ///< Np
  double crossover_prob = 0.9;        ///< pc
  double mutation_prob = 0.1;         ///< pm
  std::size_t max_iterations = 1000;
  std::size_t stagnation_window = 100;
  std::uint64_t seed = 1;
  ObjectiveKind objective = ObjectiveKind::kEpsilonConstraint;
  double epsilon = 1.0;       ///< ε of Eqn. 7 (kEpsilonConstraint only)
  bool seed_with_heft = true; ///< include the HEFT chromosome in generation 0
  bool elitism = true;        ///< ablation knob (paper: on)
  /// Record one history entry every `history_stride` iterations (plus the
  /// final one). 0 disables history.
  std::size_t history_stride = 1;
  /// Weight of the per-task stddev in the effective-slack objective: a task
  /// earns at most kappa * sigma of slack credit
  /// (kEpsilonConstraintEffective only).
  double effective_slack_kappa = 3.0;
  /// Threads for the population-evaluation loop; 0 = the OpenMP default
  /// (all hardware threads). Pure performance knob: results are
  /// bit-identical for any value (dense result array, serial reduction —
  /// same contract as MonteCarloConfig::threads).
  std::size_t threads = 0;
  /// Warm-start chromosomes injected into generation 0 alongside the HEFT
  /// seed (the online rescheduler passes the incumbent here). Each must be
  /// valid for the problem; duplicates of earlier seeds are skipped, and at
  /// most population_size seeds are taken.
  std::vector<Chromosome> seeds;
};

/// Snapshot of the best-so-far individual at one recorded iteration.
struct GaIterationRecord {
  std::size_t iteration = 0;
  double best_makespan = 0.0;   ///< M0 of the best-so-far individual
  double best_avg_slack = 0.0;  ///< sigma bar of the best-so-far individual
};

/// Final result of one GA run.
struct GaResult {
  Chromosome best;
  Evaluation best_eval;
  Schedule best_schedule;
  double heft_makespan = 0.0;  ///< M_HEFT reference used by the constraint
  std::size_t iterations = 0;  ///< generations actually executed
  std::vector<GaIterationRecord> history;
};

/// Observer invoked at every recorded iteration with the best-so-far
/// chromosome; the figure harnesses use it to Monte-Carlo-evaluate the
/// evolving schedule (paper Figs. 2-3).
using GaObserver =
    std::function<void(const GaIterationRecord&, const Chromosome& best)>;

/// Run the GA on (graph, platform, expected costs).
/// `costs(i, p)` is the expected duration of task i on processor p.
///
/// `duration_stddev` (optional, n x m) carries the stochastic information
/// for the kEpsilonConstraintEffective objective: the standard deviation of
/// task i's realized duration on processor p (see core/stochastic.hpp).
/// Required for that objective, ignored by the others.
///
/// `scratch` (optional) supplies the evaluation workspaces; the run rebinds
/// the pool to this problem and grows it to its thread count. Long-lived
/// callers (the scheduling service's workers) pass one pool per worker so
/// capacity is reused across jobs; pass nullptr for a run-local pool.
GaResult run_ga(const TaskGraph& graph, const Platform& platform,
                const Matrix<double>& costs, const GaConfig& config,
                const GaObserver& observer = nullptr,
                const Matrix<double>* duration_stddev = nullptr,
                EvalWorkspacePool* scratch = nullptr);

}  // namespace rts
