#include "ga/local_search.hpp"

#include <algorithm>

#include "ga/eval.hpp"
#include "ga/operators.hpp"
#include "sched/heft.hpp"
#include "util/error.hpp"

namespace rts {

namespace {

/// True when `candidate` improves on `incumbent` under the bound.
bool improves(const Evaluation& candidate, const Evaluation& incumbent, double bound) {
  if (candidate.makespan > bound) return false;
  if (candidate.avg_slack != incumbent.avg_slack) {
    return candidate.avg_slack > incumbent.avg_slack;
  }
  return candidate.makespan < incumbent.makespan;
}

}  // namespace

LocalSearchResult run_slack_local_search(const TaskGraph& graph,
                                         const Platform& platform,
                                         const Matrix<double>& costs,
                                         const LocalSearchConfig& config) {
  RTS_REQUIRE(config.epsilon > 0.0, "epsilon must be positive");
  RTS_REQUIRE(config.max_passes >= 1, "need at least one pass");
  graph.validate();
  const std::size_t n = graph.task_count();
  const std::size_t m = platform.proc_count();
  Rng rng(config.seed);

  const ListScheduleResult heft = heft_schedule(graph, platform, costs);
  const double bound = config.epsilon * heft.makespan;

  // The neighbourhood scan scores O(n * m) candidates per pass; one reusable
  // workspace keeps that loop allocation-free.
  EvalWorkspace ws(graph, platform, costs);

  Chromosome current = config.seed_with_heft
                           ? encode_schedule(graph, platform, heft.schedule, costs)
                           : random_chromosome(graph, m, rng);
  Evaluation current_eval = ws.evaluate(current);

  LocalSearchResult result{current, current_eval,
                           decode(current, m), heft.makespan, 1, 0};

  std::vector<std::size_t> visit(n);
  for (std::size_t i = 0; i < n; ++i) visit[i] = i;

  for (std::size_t pass = 0; pass < config.max_passes; ++pass) {
    bool improved_this_pass = false;
    // Shuffled visit order de-biases the first-improvement rule.
    for (std::size_t i = n; i > 1; --i) {
      std::swap(visit[i - 1], visit[static_cast<std::size_t>(rng.next_below(i))]);
    }

    for (const std::size_t ti : visit) {
      const auto t = static_cast<TaskId>(ti);

      // (a) Processor reassignment moves.
      const ProcId original_proc = current.assignment[t];
      for (const ProcId p : id_range<ProcId>(m)) {
        if (p == original_proc) continue;
        current.assignment[t] = p;
        const Evaluation candidate = ws.evaluate(current);
        ++result.evaluations;
        if (improves(candidate, current_eval, bound)) {
          current_eval = candidate;
          ++result.improvements;
          improved_this_pass = true;
          break;  // first improvement; keep the new assignment
        }
        current.assignment[t] = original_proc;
      }

      // (b) Window-shift moves: earliest and latest valid position.
      const auto pos_it = std::find(current.order.begin(), current.order.end(), t);
      const auto original_pos =
          static_cast<std::size_t>(pos_it - current.order.begin());
      current.order.erase(pos_it);
      const auto [lo, hi] = mutation_window(graph, current.order, t);
      bool moved = false;
      for (const std::size_t target : {lo, hi}) {
        if (target == original_pos) continue;
        current.order.insert(current.order.begin() + static_cast<std::ptrdiff_t>(target),
                             t);
        const Evaluation candidate = ws.evaluate(current);
        ++result.evaluations;
        if (improves(candidate, current_eval, bound)) {
          current_eval = candidate;
          ++result.improvements;
          improved_this_pass = true;
          moved = true;
          break;
        }
        current.order.erase(current.order.begin() +
                            static_cast<std::ptrdiff_t>(target));
      }
      if (!moved) {
        current.order.insert(
            current.order.begin() + static_cast<std::ptrdiff_t>(original_pos), t);
      }
    }
    if (!improved_this_pass) break;
  }

  result.best = current;
  result.best_eval = current_eval;
  result.best_schedule = decode(current, m);
  return result;
}

}  // namespace rts
