#include "ga/operators.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rts {

namespace {

/// positions[t] = index of task t in `order`; `id_bound` > every task id
/// (tasks absent from `order` keep an unspecified value).
IdVector<TaskId, std::size_t> positions_of(std::span<const TaskId> order,
                                           std::size_t id_bound) {
  IdVector<TaskId, std::size_t> pos(id_bound, 0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[order[i]] = i;
  }
  return pos;
}

/// Offspring scheduling string: keep `keeper`'s [0, cut), reorder the rest by
/// their relative positions in `pattern`.
std::vector<TaskId> cross_order(std::span<const TaskId> keeper,
                                std::span<const TaskId> pattern, std::size_t cut) {
  const std::size_t n = keeper.size();
  std::vector<TaskId> child(keeper.begin(), keeper.begin() + static_cast<std::ptrdiff_t>(cut));
  IdVector<TaskId, bool> in_left(n, false);
  for (std::size_t i = 0; i < cut; ++i) in_left[keeper[i]] = true;
  for (const TaskId t : pattern) {
    if (!in_left[t]) child.push_back(t);
  }
  RTS_ENSURE(child.size() == n, "crossover lost tasks");
  return child;
}

}  // namespace

std::pair<Chromosome, Chromosome> crossover(const Chromosome& parent_a,
                                            const Chromosome& parent_b, Rng& rng) {
  const std::size_t n = parent_a.order.size();
  RTS_REQUIRE(n > 0 && parent_b.order.size() == n &&
                  parent_a.assignment.size() == n && parent_b.assignment.size() == n,
              "crossover parents must encode the same task set");

  // Cut in [1, n-1] so both sides are non-trivial (n == 1 degenerates to a
  // copy).
  const std::size_t order_cut =
      n > 1 ? 1 + static_cast<std::size_t>(rng.next_below(n - 1)) : 1;
  Chromosome child_a;
  Chromosome child_b;
  child_a.order = cross_order(parent_a.order, parent_b.order, order_cut);
  child_b.order = cross_order(parent_b.order, parent_a.order, order_cut);

  // Assignment tails swap at an independent cut over task ids.
  const std::size_t assign_cut =
      n > 1 ? 1 + static_cast<std::size_t>(rng.next_below(n - 1)) : 1;
  child_a.assignment = parent_a.assignment;
  child_b.assignment = parent_b.assignment;
  for (TaskId t = static_cast<TaskId>(assign_cut); t.index() < n; ++t) {
    std::swap(child_a.assignment[t], child_b.assignment[t]);
  }
  return {std::move(child_a), std::move(child_b)};
}

std::pair<std::size_t, std::size_t> mutation_window(const TaskGraph& graph,
                                                    std::span<const TaskId> order_without_v,
                                                    TaskId v) {
  const auto pos = positions_of(order_without_v, graph.task_count());
  // Insertion index lo..hi (inclusive); inserting at index i places v before
  // the task currently at i. All immediate predecessors must stay before v
  // and all immediate successors after it.
  std::size_t lo = 0;
  std::size_t hi = order_without_v.size();  // == append
  for (const EdgeRef& e : graph.predecessors(v)) {
    lo = std::max(lo, pos[e.task] + 1);
  }
  for (const EdgeRef& e : graph.successors(v)) {
    hi = std::min(hi, pos[e.task]);
  }
  RTS_ENSURE(lo <= hi, "empty mutation window on a valid scheduling string");
  return {lo, hi};
}

void mutate(Chromosome& chromosome, const TaskGraph& graph, std::size_t proc_count,
            Rng& rng) {
  const std::size_t n = chromosome.order.size();
  RTS_REQUIRE(n == graph.task_count(), "chromosome does not match graph");

  const TaskId v = chromosome.order[static_cast<std::size_t>(rng.next_below(n))];

  // Remove v, then re-insert within its precedence window.
  auto& order = chromosome.order;
  order.erase(std::find(order.begin(), order.end(), v));
  const auto [lo, hi] = mutation_window(graph, order, v);
  const std::size_t target =
      lo + static_cast<std::size_t>(rng.next_below(hi - lo + 1));
  order.insert(order.begin() + static_cast<std::ptrdiff_t>(target), v);

  // Random processor; per-processor order stays derived from the scheduling
  // string, which is exactly the paper's re-insertion rule.
  chromosome.assignment[v] = static_cast<ProcId>(rng.next_below(proc_count));
}

}  // namespace rts
