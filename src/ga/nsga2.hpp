#pragma once
// NSGA-II (Deb et al. 2002) over the same chromosome encoding and variation
// operators as the paper's GA — an extension beyond the paper: instead of
// solving one ε-constraint scalarization per run (Section 4.1), a single
// NSGA-II run approximates the whole makespan/slack Pareto front.
// bench/ablation_pareto compares the two approaches with the hypervolume and
// coverage indicators (core/pareto.hpp).
//
// Objectives: minimize expected makespan M0, maximize average slack σ̄ —
// both evaluated under Claim 3.2 semantics like everywhere else.

#include "ga/chromosome.hpp"
#include "ga/fitness.hpp"
#include "util/matrix.hpp"

namespace rts {

/// NSGA-II hyper-parameters.
struct Nsga2Config {
  std::size_t population_size = 40;  ///< rounded up to even internally
  double crossover_prob = 0.9;
  double mutation_prob = 0.1;
  std::size_t max_generations = 250;
  std::uint64_t seed = 1;
  bool seed_with_heft = true;  ///< anchor the front's low-makespan end
};

/// The final non-dominated set (duplicates removed).
struct Nsga2Result {
  std::vector<Chromosome> front;       ///< decision-space solutions
  std::vector<Evaluation> front_evals; ///< aligned objective values
  double heft_makespan = 0.0;
  std::size_t generations = 0;
};

/// Run NSGA-II on (graph, platform, expected costs).
Nsga2Result run_nsga2(const TaskGraph& graph, const Platform& platform,
                      const Matrix<double>& costs, const Nsga2Config& config);

/// Fast non-dominated sort (exposed for tests): returns the 0-based rank of
/// each evaluation (rank 0 = non-dominated) for the bi-objective
/// (min makespan, max slack) problem.
std::vector<std::size_t> non_dominated_ranks(std::span<const Evaluation> evals);

/// Crowding distances within one rank class (exposed for tests): boundary
/// solutions get +infinity; interior ones the normalized cuboid perimeter.
std::vector<double> crowding_distances(std::span<const Evaluation> evals);

}  // namespace rts
