#pragma once
// GA variation operators (paper Sections 4.2.5 and 4.2.6).
//
// Crossover — single point. Scheduling strings: a random cut position splits
// both parents; each offspring keeps its parent's left part and reorders the
// right-part tasks by their relative positions in the *other* parent's
// scheduling string (this provably yields a valid topological sort).
// Assignments: the per-task processor strings exchange their tails at a
// second random cut over task ids.
//
// Mutation — pick a task v, move it to a uniformly random position within
// its precedence window (strictly after the last scheduled immediate
// predecessor, strictly before the first scheduled immediate successor),
// then assign v a uniformly random processor.

#include <utility>

#include "ga/chromosome.hpp"

namespace rts {

/// Single-point crossover; returns the two offspring.
std::pair<Chromosome, Chromosome> crossover(const Chromosome& parent_a,
                                            const Chromosome& parent_b, Rng& rng);

/// In-place precedence-window move mutation + random processor reassignment.
void mutate(Chromosome& chromosome, const TaskGraph& graph, std::size_t proc_count,
            Rng& rng);

/// The inclusive insertion-index window [lo, hi] into which task `v` (already
/// erased from `order`) may be re-inserted without violating precedence.
/// Exposed for tests. `order_without_v` has length n-1.
std::pair<std::size_t, std::size_t> mutation_window(const TaskGraph& graph,
                                                    std::span<const TaskId> order_without_v,
                                                    TaskId v);

}  // namespace rts
