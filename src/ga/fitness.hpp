#pragma once
// Objective functions of the GA (paper Sections 4.1, 4.2.3).
//
// Three modes:
//   * kMinimizeMakespan — Section 5.1's first experiment (Fig. 2);
//   * kMaximizeSlack    — Section 5.1's second experiment (Fig. 3);
//   * kEpsilonConstraint — the bi-objective formulation (Eqn. 7/8):
//     maximize average slack subject to M0 <= epsilon * M_HEFT, with the
//     population-based penalty fitness of Eqn. 8 for infeasible individuals.

#include <span>
#include <vector>

namespace rts {

/// Which quantity the GA optimizes.
enum class ObjectiveKind {
  kMinimizeMakespan,
  kMaximizeSlack,
  kEpsilonConstraint,
  /// ε-constraint on the *effective* slack: each task contributes
  /// min(slack_i, kappa * sigma_i) where sigma_i is the stddev of its
  /// realized duration on the assigned processor — slack beyond what the
  /// uncertainty can consume earns nothing (stochastic-information-guided
  /// objective, the paper's Section 6 direction; see core/stochastic.hpp).
  kEpsilonConstraintEffective,
};

/// Cached evaluation of one chromosome (expected-cost quantities only; the
/// stochastic robustness of a finished schedule is measured by rts::sim).
struct Evaluation {
  double makespan = 0.0;   ///< M0 under Claim 3.2 semantics
  double avg_slack = 0.0;  ///< sigma bar (Eqn. 3)
  /// Mean of min(slack_i, kappa * sigma_i); only meaningful when the GA runs
  /// with duration-stddev information, 0 otherwise.
  double effective_slack = 0.0;
};

/// Compute the fitness of every individual for one generation. Larger is
/// always better. For kEpsilonConstraint this implements Eqn. 8 exactly:
/// feasible individuals (makespan <= epsilon * heft_makespan) score their
/// average slack; infeasible ones score
/// min{fitness of feasible} * epsilon * M_HEFT / M0, i.e. are ranked below
/// every feasible individual in proportion to their constraint violation.
/// When the generation has no feasible individual the fallback ranks by
/// epsilon * M_HEFT / M0 alone (see DESIGN.md).
std::vector<double> generation_fitness(std::span<const Evaluation> evals,
                                       ObjectiveKind objective, double epsilon,
                                       double heft_makespan);

/// Feasibility under the ε-constraint (Eqn. 7; boundary inclusive so the
/// HEFT seed itself is feasible at epsilon = 1).
bool is_feasible(const Evaluation& eval, double epsilon, double heft_makespan);

/// Cross-generation comparison for best-so-far tracking and elitism:
/// returns true when `a` is strictly better than `b` under `objective`.
/// For kEpsilonConstraint: feasible beats infeasible; two feasibles compare
/// on slack (ties to smaller makespan); two infeasibles on smaller makespan.
bool better_than(const Evaluation& a, const Evaluation& b, ObjectiveKind objective,
                 double epsilon, double heft_makespan);

}  // namespace rts
