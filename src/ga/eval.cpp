#include "ga/eval.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rts {

EvalWorkspace::EvalWorkspace(const TaskGraph& graph, const Platform& platform,
                             const Matrix<double>& costs,
                             const Matrix<double>* duration_stddev,
                             double effective_slack_kappa) {
  bind(graph, platform, costs, duration_stddev, effective_slack_kappa);
}

void EvalWorkspace::bind(const TaskGraph& graph, const Platform& platform,
                         const Matrix<double>& costs,
                         const Matrix<double>* duration_stddev,
                         double effective_slack_kappa) {
  RTS_REQUIRE(costs.rows() == graph.task_count() &&
                  costs.cols() == platform.proc_count(),
              "cost matrix shape must match graph tasks x platform processors");
  if (duration_stddev != nullptr) {
    RTS_REQUIRE(duration_stddev->rows() == graph.task_count() &&
                    duration_stddev->cols() == platform.proc_count(),
                "duration stddev matrix has wrong shape");
    RTS_REQUIRE(effective_slack_kappa > 0.0, "kappa must be positive");
  }
  costs_ = &costs;
  stddev_ = duration_stddev;
  kappa_ = effective_slack_kappa;
  evaluator_.bind(graph, platform);
}

Evaluation EvalWorkspace::evaluate(const Chromosome& chromosome) {
  RTS_REQUIRE(bound(), "workspace is unbound; bind() a problem first");
  evaluator_.rebuild(chromosome.order, chromosome.assignment);
  return finish(chromosome.assignment);
}

Evaluation EvalWorkspace::evaluate(const Schedule& schedule) {
  RTS_REQUIRE(bound(), "workspace is unbound; bind() a problem first");
  evaluator_.rebuild(schedule);
  return finish(schedule.assignment());
}

Evaluation EvalWorkspace::finish(IdSpan<TaskId, const ProcId> assignment) {
  const std::size_t n = evaluator_.task_count();
  const Matrix<double>& costs = *costs_;
  durations_.resize(n);
  for (const TaskId t : id_range<TaskId>(n)) {
    durations_[t] = costs(t.index(), assignment[t].index());
  }
  evaluator_.full_timing_into(durations_, timing_);
  Evaluation eval{timing_.makespan, timing_.average_slack, 0.0};
  if (stddev_ != nullptr) {
    // Effective slack: credit per task capped at kappa * sigma on its
    // assigned processor — surplus slack cannot absorb more delay than the
    // task's uncertainty can produce.
    double sum = 0.0;
    for (const TaskId t : id_range<TaskId>(n)) {
      sum += std::min(timing_.slack[t],
                      kappa_ * (*stddev_)(t.index(), assignment[t].index()));
    }
    eval.effective_slack = sum / static_cast<double>(n);
  }
  return eval;
}

void EvalWorkspacePool::bind(const TaskGraph& graph, const Platform& platform,
                             const Matrix<double>& costs,
                             const Matrix<double>* duration_stddev,
                             double effective_slack_kappa) {
  binding_ = Binding{&graph, &platform, &costs, duration_stddev,
                     effective_slack_kappa};
  for (const auto& ws : workspaces_) {
    ws->bind(graph, platform, costs, duration_stddev, effective_slack_kappa);
  }
}

void EvalWorkspacePool::reserve(std::size_t count) {
  RTS_REQUIRE(binding_.costs != nullptr, "pool is unbound; bind() a problem first");
  while (workspaces_.size() < count) {
    auto ws = std::make_unique<EvalWorkspace>(
        *binding_.graph, *binding_.platform, *binding_.costs, binding_.stddev,
        binding_.kappa);
    workspaces_.push_back(std::move(ws));
  }
}

EvalWorkspace& EvalWorkspacePool::workspace(std::size_t index) {
  RTS_REQUIRE(index < workspaces_.size(),
              "workspace index outside the reserved pool");
  return *workspaces_[index];
}

}  // namespace rts
