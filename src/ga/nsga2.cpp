#include "ga/nsga2.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <unordered_set>

#include "ga/eval.hpp"
#include "ga/operators.hpp"
#include "sched/heft.hpp"
#include "util/distributions.hpp"
#include "util/error.hpp"

namespace rts {

namespace {

bool dominates_eval(const Evaluation& a, const Evaluation& b) {
  const bool no_worse = a.makespan <= b.makespan && a.avg_slack >= b.avg_slack;
  const bool better = a.makespan < b.makespan || a.avg_slack > b.avg_slack;
  return no_worse && better;
}

void shuffle_indices(std::vector<std::size_t>& idx, Rng& rng) {
  for (std::size_t i = idx.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.next_below(i));
    std::swap(idx[i - 1], idx[j]);
  }
}

}  // namespace

std::vector<std::size_t> non_dominated_ranks(std::span<const Evaluation> evals) {
  const std::size_t n = evals.size();
  std::vector<std::size_t> rank(n, 0);
  std::vector<std::size_t> domination_count(n, 0);
  std::vector<std::vector<std::size_t>> dominated_by(n);

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (dominates_eval(evals[i], evals[j])) {
        dominated_by[i].push_back(j);
        ++domination_count[j];
      } else if (dominates_eval(evals[j], evals[i])) {
        dominated_by[j].push_back(i);
        ++domination_count[i];
      }
    }
  }

  std::vector<std::size_t> current;
  for (std::size_t i = 0; i < n; ++i) {
    if (domination_count[i] == 0) current.push_back(i);
  }
  std::size_t level = 0;
  while (!current.empty()) {
    std::vector<std::size_t> next;
    for (const std::size_t i : current) {
      rank[i] = level;
      for (const std::size_t j : dominated_by[i]) {
        if (--domination_count[j] == 0) next.push_back(j);
      }
    }
    current = std::move(next);
    ++level;
  }
  return rank;
}

std::vector<double> crowding_distances(std::span<const Evaluation> evals) {
  const std::size_t n = evals.size();
  std::vector<double> distance(n, 0.0);
  if (n <= 2) {
    std::fill(distance.begin(), distance.end(),
              std::numeric_limits<double>::infinity());
    return distance;
  }

  const auto accumulate_objective = [&](auto key) {
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return key(evals[a]) < key(evals[b]);
    });
    const double lo = key(evals[order.front()]);
    const double hi = key(evals[order.back()]);
    distance[order.front()] = std::numeric_limits<double>::infinity();
    distance[order.back()] = std::numeric_limits<double>::infinity();
    if (hi == lo) return;  // degenerate objective: interior adds nothing
    for (std::size_t k = 1; k + 1 < n; ++k) {
      distance[order[k]] +=
          (key(evals[order[k + 1]]) - key(evals[order[k - 1]])) / (hi - lo);
    }
  };
  accumulate_objective([](const Evaluation& e) { return e.makespan; });
  accumulate_objective([](const Evaluation& e) { return e.avg_slack; });
  return distance;
}

Nsga2Result run_nsga2(const TaskGraph& graph, const Platform& platform,
                      const Matrix<double>& costs, const Nsga2Config& config) {
  RTS_REQUIRE(config.population_size >= 4, "population size must be at least 4");
  RTS_REQUIRE(config.max_generations >= 1, "need at least one generation");
  RTS_REQUIRE(config.crossover_prob >= 0.0 && config.crossover_prob <= 1.0,
              "crossover probability outside [0,1]");
  RTS_REQUIRE(config.mutation_prob >= 0.0 && config.mutation_prob <= 1.0,
              "mutation probability outside [0,1]");
  graph.validate();

  const std::size_t np = config.population_size + config.population_size % 2;
  const std::size_t proc_count = platform.proc_count();
  Rng rng(config.seed);

  struct Individual {
    Chromosome chrom;
    Evaluation eval;
  };

  const ListScheduleResult heft = heft_schedule(graph, platform, costs);

  // One reusable workspace scores every candidate of the run (the offspring
  // loop interleaves evaluation with the RNG-driven operators, so it stays
  // serial; see ga/eval.hpp).
  EvalWorkspace ws(graph, platform, costs);

  std::vector<Individual> pop;
  pop.reserve(np);
  if (config.seed_with_heft) {
    Chromosome c = encode_schedule(graph, platform, heft.schedule, costs);
    Evaluation e = ws.evaluate(c);
    pop.push_back(Individual{std::move(c), e});
  }
  while (pop.size() < np) {
    Chromosome c = random_chromosome(graph, proc_count, rng);
    Evaluation e = ws.evaluate(c);
    pop.push_back(Individual{std::move(c), e});
  }

  std::vector<Evaluation> evals(np);
  for (std::size_t gen = 0; gen < config.max_generations; ++gen) {
    // Rank + crowding of the current population drive the mating tournament.
    for (std::size_t i = 0; i < np; ++i) evals[i] = pop[i].eval;
    const auto rank = non_dominated_ranks(evals);
    // Crowding computed per rank class.
    std::vector<double> crowd(np, 0.0);
    {
      const std::size_t max_rank = *std::max_element(rank.begin(), rank.end());
      for (std::size_t r = 0; r <= max_rank; ++r) {
        std::vector<std::size_t> members;
        for (std::size_t i = 0; i < np; ++i) {
          if (rank[i] == r) members.push_back(i);
        }
        std::vector<Evaluation> class_evals;
        class_evals.reserve(members.size());
        for (const std::size_t i : members) class_evals.push_back(evals[i]);
        const auto d = crowding_distances(class_evals);
        for (std::size_t k = 0; k < members.size(); ++k) crowd[members[k]] = d[k];
      }
    }
    const auto crowded_better = [&](std::size_t a, std::size_t b) {
      if (rank[a] != rank[b]) return rank[a] < rank[b];
      return crowd[a] > crowd[b];
    };

    // Offspring: binary tournaments pick parents; crossover + mutation as in
    // the paper's GA.
    std::vector<Individual> offspring;
    offspring.reserve(np);
    std::vector<std::size_t> idx(np);
    while (offspring.size() < np) {
      std::iota(idx.begin(), idx.end(), std::size_t{0});
      shuffle_indices(idx, rng);
      for (std::size_t k = 0; k + 3 < np && offspring.size() < np; k += 4) {
        const std::size_t pa = crowded_better(idx[k], idx[k + 1]) ? idx[k] : idx[k + 1];
        const std::size_t pb =
            crowded_better(idx[k + 2], idx[k + 3]) ? idx[k + 2] : idx[k + 3];
        Chromosome ca = pop[pa].chrom;
        Chromosome cb = pop[pb].chrom;
        if (sample_bernoulli(rng, config.crossover_prob)) {
          std::tie(ca, cb) = crossover(pop[pa].chrom, pop[pb].chrom, rng);
        }
        if (sample_bernoulli(rng, config.mutation_prob)) {
          mutate(ca, graph, proc_count, rng);
        }
        if (sample_bernoulli(rng, config.mutation_prob)) {
          mutate(cb, graph, proc_count, rng);
        }
        Evaluation ea = ws.evaluate(ca);
        offspring.push_back(Individual{std::move(ca), ea});
        if (offspring.size() < np) {
          Evaluation eb = ws.evaluate(cb);
          offspring.push_back(Individual{std::move(cb), eb});
        }
      }
    }

    // Environmental selection on parents + offspring (elitist).
    std::vector<Individual> merged = std::move(pop);
    merged.insert(merged.end(), std::make_move_iterator(offspring.begin()),
                  std::make_move_iterator(offspring.end()));
    std::vector<Evaluation> merged_evals(merged.size());
    for (std::size_t i = 0; i < merged.size(); ++i) merged_evals[i] = merged[i].eval;
    const auto merged_rank = non_dominated_ranks(merged_evals);

    std::vector<std::size_t> order(merged.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    // Crowding within each rank of the merged pool.
    std::vector<double> merged_crowd(merged.size(), 0.0);
    const std::size_t max_rank =
        *std::max_element(merged_rank.begin(), merged_rank.end());
    for (std::size_t r = 0; r <= max_rank; ++r) {
      std::vector<std::size_t> members;
      for (std::size_t i = 0; i < merged.size(); ++i) {
        if (merged_rank[i] == r) members.push_back(i);
      }
      std::vector<Evaluation> class_evals;
      class_evals.reserve(members.size());
      for (const std::size_t i : members) class_evals.push_back(merged_evals[i]);
      const auto d = crowding_distances(class_evals);
      for (std::size_t k = 0; k < members.size(); ++k) merged_crowd[members[k]] = d[k];
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (merged_rank[a] != merged_rank[b]) return merged_rank[a] < merged_rank[b];
      return merged_crowd[a] > merged_crowd[b];
    });

    pop.clear();
    pop.reserve(np);
    for (std::size_t k = 0; k < np; ++k) pop.push_back(std::move(merged[order[k]]));
  }

  // Final front: rank-0 members, deduplicated by chromosome content.
  for (std::size_t i = 0; i < np; ++i) evals[i] = pop[i].eval;
  const auto final_rank = non_dominated_ranks(evals);
  Nsga2Result result;
  result.heft_makespan = heft.makespan;
  result.generations = config.max_generations;
  std::unordered_set<std::uint64_t> seen;
  for (std::size_t i = 0; i < np; ++i) {
    if (final_rank[i] != 0) continue;
    if (!seen.insert(chromosome_hash(pop[i].chrom)).second) continue;
    result.front.push_back(pop[i].chrom);
    result.front_evals.push_back(pop[i].eval);
  }
  return result;
}

}  // namespace rts
