#pragma once
// Deterministic slack-refinement local search — a cheap alternative to the
// GA for the ε-constraint problem: start from HEFT and greedily apply the
// first move that increases average slack while keeping the makespan within
// ε * M_HEFT. Move neighbourhood per task: reassign to any other processor
// (keeping the scheduling-string order), or shift the task to either end of
// its precedence window. First-improvement sweeps repeat until a full pass
// finds nothing or the pass budget is exhausted.
//
// Useful as (a) a fast 80%-solution when a GA run is too expensive, and
// (b) a baseline showing how much of the GA's gain simple hill climbing
// already captures (bench/ablation_local_search).

#include "ga/chromosome.hpp"
#include "ga/fitness.hpp"

namespace rts {

/// Local-search knobs.
struct LocalSearchConfig {
  double epsilon = 1.0;        ///< makespan bound relative to M_HEFT
  std::size_t max_passes = 20; ///< full first-improvement sweeps
  std::uint64_t seed = 1;      ///< task-visit order shuffling
  bool seed_with_heft = true;  ///< start from HEFT (else a random chromosome)
};

/// Result of one local-search run.
struct LocalSearchResult {
  Chromosome best;
  Evaluation best_eval;
  Schedule best_schedule;
  double heft_makespan = 0.0;
  std::size_t evaluations = 0;  ///< timing evaluations performed
  std::size_t improvements = 0; ///< accepted moves
};

/// Run the slack hill climber on (graph, platform, expected costs).
LocalSearchResult run_slack_local_search(const TaskGraph& graph,
                                         const Platform& platform,
                                         const Matrix<double>& costs,
                                         const LocalSearchConfig& config);

}  // namespace rts
