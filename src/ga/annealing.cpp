#include "ga/annealing.hpp"

#include <algorithm>
#include <cmath>

#include "ga/eval.hpp"
#include "ga/operators.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace rts {

namespace {

struct EnergyModel {
  ObjectiveKind objective;
  double epsilon;
  double heft_makespan;
  double kappa;
  const Matrix<double>* stddev;

  // Energies are normalized by M_HEFT so the feasible (slack) and
  // infeasible (violation) branches live on the same dimensionless scale and
  // the auto-calibrated temperature transfers across instances. Feasible
  // states are <= 0, infeasible > 0, so feasibility always dominates.
  double operator()(const Evaluation& eval) const {
    switch (objective) {
      case ObjectiveKind::kMinimizeMakespan:
        return eval.makespan / heft_makespan;
      case ObjectiveKind::kMaximizeSlack:
        return -eval.avg_slack / heft_makespan;
      case ObjectiveKind::kEpsilonConstraint:
      case ObjectiveKind::kEpsilonConstraintEffective: {
        const double bound = epsilon * heft_makespan;
        if (eval.makespan > bound) {
          return (eval.makespan - bound) / bound;
        }
        return (objective == ObjectiveKind::kEpsilonConstraintEffective
                    ? -eval.effective_slack
                    : -eval.avg_slack) /
               heft_makespan;
      }
    }
    return 0.0;
  }
};

}  // namespace

SaResult run_simulated_annealing(const TaskGraph& graph, const Platform& platform,
                                 const Matrix<double>& costs, const SaConfig& config,
                                 const Matrix<double>* duration_stddev) {
  RTS_REQUIRE(config.iterations >= 1, "need at least one iteration");
  RTS_REQUIRE(config.final_temp_fraction > 0.0 && config.final_temp_fraction < 1.0,
              "final temperature fraction must lie in (0,1)");
  if (config.objective == ObjectiveKind::kEpsilonConstraintEffective) {
    RTS_REQUIRE(duration_stddev != nullptr,
                "the effective-slack objective needs the duration stddev matrix");
  } else {
    duration_stddev = nullptr;
  }
  graph.validate();

  Rng rng(config.seed);
  const ListScheduleResult heft = heft_schedule(graph, platform, costs);
  const EnergyModel energy{config.objective, config.epsilon, heft.makespan,
                           config.effective_slack_kappa, duration_stddev};

  // One reusable workspace scores the whole chain — the annealer evaluates
  // one neighbour at a time, so a single workspace amortizes everything.
  EvalWorkspace ws(graph, platform, costs, duration_stddev,
                   config.effective_slack_kappa);

  Chromosome current = config.seed_with_heft
                           ? encode_schedule(graph, platform, heft.schedule, costs)
                           : random_chromosome(graph, platform.proc_count(), rng);
  Evaluation current_eval = ws.evaluate(current);
  double current_energy = energy(current_eval);

  Chromosome best = current;
  Evaluation best_eval = current_eval;
  double best_energy = current_energy;

  // Auto-calibrate T0 as the energy spread of a short random walk, so the
  // early phase accepts most moves regardless of the instance's scale.
  double t0 = config.initial_temperature;
  if (t0 <= 0.0) {
    RunningStats probe;
    Chromosome walker = current;
    for (int i = 0; i < 64; ++i) {
      mutate(walker, graph, platform.proc_count(), rng);
      probe.add(energy(ws.evaluate(walker)));
    }
    t0 = std::max(probe.stddev(), 1e-9);
  }
  const double alpha =
      std::pow(config.final_temp_fraction, 1.0 / static_cast<double>(config.iterations));

  SaResult result{best, best_eval, decode(best, platform.proc_count()), heft.makespan,
                  0, 0};
  double temperature = t0;
  for (std::size_t iter = 0; iter < config.iterations; ++iter) {
    Chromosome neighbour = current;
    mutate(neighbour, graph, platform.proc_count(), rng);
    const Evaluation neighbour_eval = ws.evaluate(neighbour);
    const double neighbour_energy = energy(neighbour_eval);

    const double delta = neighbour_energy - current_energy;
    if (delta <= 0.0 || rng.next_double() < std::exp(-delta / temperature)) {
      current = std::move(neighbour);
      current_eval = neighbour_eval;
      current_energy = neighbour_energy;
      ++result.accepted_moves;
      if (current_energy < best_energy) {
        best = current;
        best_eval = current_eval;
        best_energy = current_energy;
      }
    }
    temperature *= alpha;
  }

  result.best = best;
  result.best_eval = best_eval;
  result.best_schedule = decode(best, platform.proc_count());
  result.iterations = config.iterations;
  return result;
}

}  // namespace rts
