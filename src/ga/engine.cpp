#include "ga/engine.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#ifdef RTS_HAVE_OPENMP
#include <omp.h>
#endif

#include "ga/operators.hpp"
#include "util/distributions.hpp"
#include "util/error.hpp"

namespace rts {

namespace {

struct Individual {
  Chromosome chrom;
  Evaluation eval;
};

/// Threads actually used by the population-evaluation loop.
std::size_t resolve_eval_threads(const GaConfig& config) {
#ifdef RTS_HAVE_OPENMP
  return config.threads > 0 ? config.threads
                            : static_cast<std::size_t>(omp_get_max_threads());
#else
  (void)config;
  return 1;
#endif
}

/// Fisher-Yates shuffle driven by our deterministic Rng.
void shuffle_indices(std::vector<std::size_t>& idx, Rng& rng) {
  for (std::size_t i = idx.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.next_below(i));
    std::swap(idx[i - 1], idx[j]);
  }
}

}  // namespace

GaResult run_ga(const TaskGraph& graph, const Platform& platform,
                const Matrix<double>& costs, const GaConfig& config,
                const GaObserver& observer, const Matrix<double>* duration_stddev,
                EvalWorkspacePool* scratch) {
  RTS_REQUIRE(config.population_size >= 2, "population size must be at least 2");
  RTS_REQUIRE(config.crossover_prob >= 0.0 && config.crossover_prob <= 1.0,
              "crossover probability outside [0,1]");
  RTS_REQUIRE(config.mutation_prob >= 0.0 && config.mutation_prob <= 1.0,
              "mutation probability outside [0,1]");
  RTS_REQUIRE(config.max_iterations >= 1, "need at least one iteration");
  if (config.objective == ObjectiveKind::kEpsilonConstraintEffective) {
    RTS_REQUIRE(duration_stddev != nullptr,
                "the effective-slack objective needs the duration stddev matrix");
    RTS_REQUIRE(duration_stddev->rows() == graph.task_count() &&
                    duration_stddev->cols() == platform.proc_count(),
                "duration stddev matrix has wrong shape");
    RTS_REQUIRE(config.effective_slack_kappa > 0.0, "kappa must be positive");
  }
  graph.validate();
  // Only the effective-slack objective consumes the stochastic information.
  if (config.objective != ObjectiveKind::kEpsilonConstraintEffective) {
    duration_stddev = nullptr;
  }

  const std::size_t np = config.population_size;
  const std::size_t proc_count = platform.proc_count();
  Rng rng(config.seed);

  // Evaluation workspaces: one per thread, owned by the caller's pool when
  // provided (service workers reuse the grown capacity across jobs).
  EvalWorkspacePool local_pool;
  EvalWorkspacePool& pool = scratch != nullptr ? *scratch : local_pool;
  pool.bind(graph, platform, costs, duration_stddev, config.effective_slack_kappa);
  const std::size_t eval_threads = resolve_eval_threads(config);
  pool.reserve(std::max<std::size_t>(1, eval_threads));

  // Evaluate the listed individuals, in parallel when it pays. Results land
  // in the dense population array and every evaluation is a pure function of
  // its chromosome, so the outcome is bit-identical for any thread count.
  const auto evaluate_many = [&](std::vector<Individual>& individuals,
                                 const std::vector<std::size_t>& which) {
#ifdef RTS_HAVE_OPENMP
    if (eval_threads > 1 && which.size() > 1) {
      const auto total = static_cast<std::int64_t>(which.size());
      // Plain local reference: lambda captures cannot appear in data-sharing
      // clauses, so default(none) needs the pool re-bound outside the region.
      EvalWorkspacePool& ws_pool = pool;
#pragma omp parallel num_threads(static_cast<int>(eval_threads)) \
    default(none) shared(ws_pool, individuals, which, total)
      {
        EvalWorkspace& ws =
            ws_pool.workspace(static_cast<std::size_t>(omp_get_thread_num()));
#pragma omp for schedule(static)
        for (std::int64_t k = 0; k < total; ++k) {
          Individual& ind = individuals[which[static_cast<std::size_t>(k)]];
          ind.eval = ws.evaluate(ind.chrom);
        }
      }
      return;
    }
#endif
    EvalWorkspace& ws = pool.workspace(0);
    for (const std::size_t i : which) {
      individuals[i].eval = ws.evaluate(individuals[i].chrom);
    }
  };

  // HEFT supplies both the ε-constraint bound M_HEFT and (optionally) one
  // seed chromosome (Section 4.2.2).
  const ListScheduleResult heft = heft_schedule(graph, platform, costs);

  std::vector<Individual> pop;
  pop.reserve(np);
  std::unordered_set<std::uint64_t> seen;
  if (config.seed_with_heft) {
    Chromosome c = encode_schedule(graph, platform, heft.schedule, costs);
    seen.insert(chromosome_hash(c));
    pop.push_back(Individual{std::move(c), Evaluation{}});
  }
  // Caller-supplied warm-start seeds (e.g. the rescheduler's incumbent).
  for (const Chromosome& seed : config.seeds) {
    if (pop.size() >= np) break;
    RTS_REQUIRE(is_valid_chromosome(graph, proc_count, seed),
                "warm-start seed chromosome is invalid for this problem");
    if (!seen.insert(chromosome_hash(seed)).second) continue;
    pop.push_back(Individual{seed, Evaluation{}});
  }
  // Uniqueness-checked random fill; on tiny search spaces (few tasks and
  // processors) distinct chromosomes may run out, so duplicates are admitted
  // after a bounded number of rejections.
  std::size_t rejections = 0;
  const std::size_t max_rejections = 64 * np;
  while (pop.size() < np) {
    Chromosome c = random_chromosome(graph, proc_count, rng);
    const std::uint64_t h = chromosome_hash(c);
    if (!seen.insert(h).second && rejections++ < max_rejections) continue;
    pop.push_back(Individual{std::move(c), Evaluation{}});
  }
  std::vector<std::size_t> eval_idx(np);
  for (std::size_t i = 0; i < np; ++i) eval_idx[i] = i;
  evaluate_many(pop, eval_idx);

  // Best-so-far tracking (elitism keeps it monotone, matching the paper's
  // "quality of the best solution is monotonically increasing").
  std::size_t best_idx = 0;
  for (std::size_t i = 1; i < np; ++i) {
    if (better_than(pop[i].eval, pop[best_idx].eval, config.objective, config.epsilon,
                    heft.makespan)) {
      best_idx = i;
    }
  }
  Individual best = pop[best_idx];

  std::vector<GaIterationRecord> history;
  // `force` records regardless of the stride — used for the terminal
  // iteration, whichever stopping rule produced it, so the history always
  // ends at iterations_run and plots are never silently truncated. The
  // dedupe guard keeps a stride-aligned final iteration from appearing twice.
  const auto record = [&](std::size_t iteration, bool force) {
    if (config.history_stride == 0) return;
    if (!force && iteration % config.history_stride != 0) return;
    if (!history.empty() && history.back().iteration == iteration) return;
    const GaIterationRecord rec{iteration, best.eval.makespan, best.eval.avg_slack};
    history.push_back(rec);
    if (observer) observer(rec, best.chrom);
  };
  record(0, false);

  std::vector<std::size_t> idx(np);
  std::vector<Evaluation> evals(np);
  std::vector<std::size_t> dirty_idx;
  dirty_idx.reserve(np);
  std::size_t stagnation = 0;
  std::size_t iterations_run = 0;

  for (std::size_t iter = 1; iter <= config.max_iterations; ++iter) {
    iterations_run = iter;
    for (std::size_t i = 0; i < np; ++i) evals[i] = pop[i].eval;
    const std::vector<double> fitness = generation_fitness(
        evals, config.objective, config.epsilon, heft.makespan);

    // --- Selection: two systematic tournament passes; every individual
    // fights exactly twice, winners fill the intermediate population.
    std::vector<Individual> intermediate;
    intermediate.reserve(np + 1);
    const auto winner_of = [&](std::size_t a, std::size_t b) {
      if (fitness[a] != fitness[b]) return fitness[a] > fitness[b] ? a : b;
      // Deterministic tie-break so runs are reproducible.
      return better_than(pop[b].eval, pop[a].eval, config.objective, config.epsilon,
                         heft.makespan)
                 ? b
                 : a;
    };
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t i = 0; i < np; ++i) idx[i] = i;
      shuffle_indices(idx, rng);
      for (std::size_t k = 0; k + 1 < np; k += 2) {
        intermediate.push_back(pop[winner_of(idx[k], idx[k + 1])]);
      }
      if (np % 2 == 1) intermediate.push_back(pop[idx[np - 1]]);  // bye
    }
    RTS_ENSURE(intermediate.size() >= np, "selection shrank the population");
    intermediate.resize(np);

    // --- Crossover: shuffle, then each adjacent pair recombines with
    // probability pc (Section 4.2.5); the remainder is copied unchanged.
    for (std::size_t i = 0; i < np; ++i) idx[i] = i;
    shuffle_indices(idx, rng);
    std::vector<Individual> next(np);
    std::vector<bool> dirty(np, false);
    for (std::size_t k = 0; k + 1 < np; k += 2) {
      const std::size_t a = idx[k];
      const std::size_t b = idx[k + 1];
      if (sample_bernoulli(rng, config.crossover_prob)) {
        auto [ca, cb] = crossover(intermediate[a].chrom, intermediate[b].chrom, rng);
        next[a].chrom = std::move(ca);
        next[b].chrom = std::move(cb);
        dirty[a] = dirty[b] = true;
      } else {
        next[a] = intermediate[a];
        next[b] = intermediate[b];
      }
    }
    if (np % 2 == 1) next[idx[np - 1]] = intermediate[idx[np - 1]];

    // --- Mutation with probability pm per individual (Section 4.2.6).
    for (std::size_t i = 0; i < np; ++i) {
      if (sample_bernoulli(rng, config.mutation_prob)) {
        mutate(next[i].chrom, graph, proc_count, rng);
        dirty[i] = true;
      }
    }

    // --- Evaluate the changed individuals (in parallel; see evaluate_many).
    dirty_idx.clear();
    for (std::size_t i = 0; i < np; ++i) {
      if (dirty[i]) dirty_idx.push_back(i);
    }
    evaluate_many(next, dirty_idx);

    // --- Elitism: the weakest newcomer makes room for the best-so-far.
    if (config.elitism) {
      std::size_t worst = 0;
      for (std::size_t i = 1; i < np; ++i) {
        if (better_than(next[worst].eval, next[i].eval, config.objective,
                        config.epsilon, heft.makespan)) {
          worst = i;
        }
      }
      next[worst] = best;
    }

    // --- Best-so-far update and stagnation bookkeeping.
    bool improved = false;
    for (const Individual& ind : next) {
      if (better_than(ind.eval, best.eval, config.objective, config.epsilon,
                      heft.makespan)) {
        best = ind;
        improved = true;
      }
    }
    stagnation = improved ? 0 : stagnation + 1;
    pop = std::move(next);
    record(iter, iter == config.max_iterations);
    if (stagnation >= config.stagnation_window) break;
  }
  // A stagnation break above skips the stride filter's max_iterations
  // special case; force-record so history.back().iteration == iterations_run.
  record(iterations_run, true);

  return GaResult{best.chrom,    best.eval,      decode(best.chrom, proc_count),
                  heft.makespan, iterations_run, std::move(history)};
}

}  // namespace rts
