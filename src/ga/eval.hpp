#pragma once
// Reusable evaluation workspaces for the metaheuristic hot loops.
//
// Every solver in src/ga/ scores candidates the same way: decode the
// chromosome, compile the disjunctive graph Gs, run the forward/backward
// timing sweeps, and (for the stochastic objective) fold per-task slack
// through the kappa*sigma cap. Doing that from scratch re-allocates a dozen
// buffers per evaluation even though the (graph, platform, costs) triple is
// fixed for the whole run — at the paper's GA budget (population 100 x 1000
// generations, Section 4.2) construction dominates the runtime.
//
// EvalWorkspace amortizes all of it: it owns a TimingEvaluator that is
// rebuilt in place per candidate (sched/timing.hpp) plus the duration and
// timing scratch, so a steady-state evaluation performs zero allocations.
// EvalWorkspacePool hands one workspace to each OpenMP thread of the GA's
// parallel population evaluation and lets the service layer reuse the
// workspaces (and their grown capacity) across jobs.
//
// Determinism contract: evaluate() is a pure function of the bound inputs
// and the candidate — no RNG, no shared mutable state between workspaces —
// so a population evaluated in parallel into a dense result array is
// bit-identical for every thread count (same contract as
// sim::evaluate_robustness).

#include <memory>
#include <vector>

#include "ga/chromosome.hpp"
#include "ga/fitness.hpp"
#include "sched/timing.hpp"
#include "util/matrix.hpp"

namespace rts {

/// One thread's reusable evaluation state for a fixed
/// (graph, platform, costs[, stddev]) binding.
class EvalWorkspace {
 public:
  /// Unbound; bind() before use.
  EvalWorkspace() = default;

  /// `duration_stddev` (optional, n x m) enables the effective-slack
  /// computation: each task contributes min(slack, kappa * sigma) instead of
  /// its raw slack (kEpsilonConstraintEffective objective).
  EvalWorkspace(const TaskGraph& graph, const Platform& platform,
                const Matrix<double>& costs,
                const Matrix<double>* duration_stddev = nullptr,
                double effective_slack_kappa = 0.0);

  /// (Re)bind to a problem, keeping all buffer capacity. The referenced
  /// objects must outlive every subsequent evaluate() call.
  void bind(const TaskGraph& graph, const Platform& platform,
            const Matrix<double>& costs,
            const Matrix<double>* duration_stddev = nullptr,
            double effective_slack_kappa = 0.0);

  [[nodiscard]] bool bound() const noexcept { return costs_ != nullptr; }

  /// Score one chromosome: expected makespan, average slack, and (when bound
  /// with a stddev matrix) effective slack. Allocation-free at steady state.
  Evaluation evaluate(const Chromosome& chromosome);

  /// Same for an explicit schedule (HEFT seeds, service re-scoring).
  Evaluation evaluate(const Schedule& schedule);

  /// Full timing of the most recent evaluate() call (valid until the next).
  [[nodiscard]] const ScheduleTiming& last_timing() const noexcept { return timing_; }

 private:
  Evaluation finish(IdSpan<TaskId, const ProcId> assignment);

  const Matrix<double>* costs_ = nullptr;
  const Matrix<double>* stddev_ = nullptr;
  double kappa_ = 0.0;
  TimingEvaluator evaluator_;
  IdVector<TaskId, double> durations_;
  ScheduleTiming timing_;
};

/// A growable set of EvalWorkspaces, one per evaluating thread. Rebinding to
/// a new problem keeps every workspace's capacity, so a long-lived service
/// worker stops paying construction costs after its first few jobs.
class EvalWorkspacePool {
 public:
  /// (Re)bind every existing workspace and remember the binding for
  /// workspaces created later by reserve().
  void bind(const TaskGraph& graph, const Platform& platform,
            const Matrix<double>& costs,
            const Matrix<double>* duration_stddev = nullptr,
            double effective_slack_kappa = 0.0);

  /// Grow to at least `count` bound workspaces. Not thread-safe: size the
  /// pool before entering a parallel region.
  void reserve(std::size_t count);

  /// Workspace of thread `index` (< size()). References stay stable across
  /// reserve() calls.
  [[nodiscard]] EvalWorkspace& workspace(std::size_t index);

  [[nodiscard]] std::size_t size() const noexcept { return workspaces_.size(); }

 private:
  struct Binding {
    const TaskGraph* graph = nullptr;
    const Platform* platform = nullptr;
    const Matrix<double>* costs = nullptr;
    const Matrix<double>* stddev = nullptr;
    double kappa = 0.0;
  };
  Binding binding_;
  std::vector<std::unique_ptr<EvalWorkspace>> workspaces_;
};

}  // namespace rts
