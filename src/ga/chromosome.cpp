#include "ga/chromosome.hpp"

#include <algorithm>
#include <numeric>

#include "graph/topology.hpp"
#include "sched/timing.hpp"
#include "util/error.hpp"

namespace rts {

Schedule decode(const Chromosome& chromosome, std::size_t proc_count) {
  return Schedule::from_order_and_assignment(chromosome.order, chromosome.assignment,
                                             proc_count);
}

Chromosome random_chromosome(const TaskGraph& graph, std::size_t proc_count, Rng& rng) {
  RTS_REQUIRE(proc_count > 0, "need at least one processor");
  Chromosome c;
  c.order = random_topological_order(graph, rng);
  c.assignment.resize(graph.task_count());
  for (auto& p : c.assignment) p = static_cast<ProcId>(rng.next_below(proc_count));
  return c;
}

Chromosome encode_schedule(const TaskGraph& graph, const Platform& platform,
                           const Schedule& schedule, const Matrix<double>& costs) {
  const auto timing = compute_schedule_timing(graph, platform, schedule, costs);
  Chromosome c;
  c.order.resize(graph.task_count());
  std::iota(c.order.begin(), c.order.end(), TaskId{0});
  std::sort(c.order.begin(), c.order.end(), [&](TaskId a, TaskId b) {
    const double sa = timing.start[a];
    const double sb = timing.start[b];
    if (sa != sb) return sa < sb;
    return a < b;
  });
  c.assignment.assign(schedule.assignment().begin(), schedule.assignment().end());
  RTS_ENSURE(is_topological_order(graph, c.order),
             "start-time order of a valid schedule must be topological");
  // The start-time order must also keep each processor's sequence: tasks on
  // one processor never overlap, so their start times follow sequence order.
  return c;
}

bool is_valid_chromosome(const TaskGraph& graph, std::size_t proc_count,
                         const Chromosome& chromosome) {
  if (chromosome.assignment.size() != graph.task_count()) return false;
  for (const ProcId p : chromosome.assignment) {
    if (!p.valid() || p.index() >= proc_count) return false;
  }
  return is_topological_order(graph, chromosome.order);
}

std::uint64_t chromosome_hash(const Chromosome& chromosome) {
  std::uint64_t h = 0x51ab5fe1905bffffull;
  for (const TaskId t : chromosome.order) {
    h = hash_combine_u64(
        h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(t.value())));
  }
  for (const ProcId p : chromosome.assignment) {
    h = hash_combine_u64(
        h, 0x8000000000000000ull |
               static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.value())));
  }
  return h;
}

}  // namespace rts
