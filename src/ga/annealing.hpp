#pragma once
// Simulated annealing over the same chromosome encoding and mutation move
// as the GA. The paper's introduction lists SA next to GAs among the guided
// random search methods for this problem; we provide it as a second
// metaheuristic so the GA's design can be benchmarked against an equal
// evaluation budget (bench/ablation_sa_vs_ga).
//
// Energy (minimized):
//   kMinimizeMakespan            ->  M0
//   kMaximizeSlack               -> -sigma bar
//   kEpsilonConstraint(+Effective) -> -objective slack when feasible,
//        a positive penalty growing with the constraint violation otherwise
//        (scaled by M_HEFT so temperatures transfer across instances).
//
// Cooling: geometric from an auto-calibrated T0 (standard deviation of
// energy over a short random-walk probe) down to T0 * final_temp_fraction.

#include "ga/engine.hpp"

namespace rts {

/// Simulated-annealing knobs.
struct SaConfig {
  std::size_t iterations = 8000;  ///< neighbour evaluations (GA: Np * iters)
  /// Initial temperature; 0 = auto-calibrate from a 64-step random walk.
  double initial_temperature = 0.0;
  /// The final temperature as a fraction of the initial one.
  double final_temp_fraction = 1e-3;
  std::uint64_t seed = 1;
  ObjectiveKind objective = ObjectiveKind::kEpsilonConstraint;
  double epsilon = 1.0;
  bool seed_with_heft = true;  ///< start from HEFT instead of a random state
  double effective_slack_kappa = 3.0;
};

/// Result of one annealing run (fields mirror GaResult).
struct SaResult {
  Chromosome best;
  Evaluation best_eval;
  Schedule best_schedule;
  double heft_makespan = 0.0;
  std::size_t iterations = 0;
  std::size_t accepted_moves = 0;
};

/// Anneal on (graph, platform, expected costs); `duration_stddev` as in
/// run_ga (required for kEpsilonConstraintEffective).
SaResult run_simulated_annealing(const TaskGraph& graph, const Platform& platform,
                                 const Matrix<double>& costs, const SaConfig& config,
                                 const Matrix<double>* duration_stddev = nullptr);

}  // namespace rts
