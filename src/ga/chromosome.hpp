#pragma once
// GA chromosome encoding (paper Section 4.2.1).
//
// A chromosome holds (a) the *scheduling string* — a topological sort of the
// task graph giving the global execution order — and (b) the processor
// assignment of every task. The paper's per-processor "assignment strings"
// are recovered on demand: each processor's sequence is its tasks in
// scheduling-string order, the exact invariant the paper's initialization and
// mutation maintain (Sections 4.2.2, 4.2.6); our crossover preserves it too.

#include <cstdint>
#include <vector>

#include "graph/task_graph.hpp"
#include "platform/platform.hpp"
#include "sched/schedule.hpp"
#include "util/rng.hpp"

namespace rts {

/// One GA individual.
struct Chromosome {
  std::vector<TaskId> order;                ///< scheduling string (a topological sort)
  IdVector<TaskId, ProcId> assignment;      ///< assignment[task] = processor

  bool operator==(const Chromosome&) const = default;
};

/// Decode to the schedule the chromosome represents.
Schedule decode(const Chromosome& chromosome, std::size_t proc_count);

/// Uniformly random valid chromosome (random topological sort + uniform
/// random processor per task), paper Section 4.2.2.
Chromosome random_chromosome(const TaskGraph& graph, std::size_t proc_count, Rng& rng);

/// Chromosome encoding an existing schedule. The scheduling string is the
/// tasks sorted by ASAP start time under `costs` (ties by id), which is
/// simultaneously a topological sort of G and consistent with the schedule's
/// per-processor sequences. Used to inject the HEFT solution into the
/// initial population (Section 4.2.2).
Chromosome encode_schedule(const TaskGraph& graph, const Platform& platform,
                           const Schedule& schedule, const Matrix<double>& costs);

/// Structural validity: `order` is a topological sort and `assignment` maps
/// every task to a processor < proc_count.
bool is_valid_chromosome(const TaskGraph& graph, std::size_t proc_count,
                         const Chromosome& chromosome);

/// 64-bit content hash (order + assignment), used for the population
/// uniqueness check of Section 4.2.2.
std::uint64_t chromosome_hash(const Chromosome& chromosome);

}  // namespace rts
