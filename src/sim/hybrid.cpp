#include "sim/hybrid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <span>

#include "sched/heft.hpp"
#include "sched/timing.hpp"
#include "sim/batched_sweep.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "workload/uncertainty.hpp"

namespace rts {

HybridRunResult simulate_hybrid(const TaskGraph& graph, const Platform& platform,
                                const Schedule& plan, const Matrix<double>& expected,
                                const Matrix<double>& realized, double threshold) {
  RTS_REQUIRE(threshold >= 0.0, "threshold must be non-negative");
  const std::size_t n = graph.task_count();
  const std::size_t m = platform.proc_count();
  RTS_REQUIRE(expected.rows() == n && expected.cols() == m,
              "expected matrix has wrong shape");
  RTS_REQUIRE(realized.rows() == n && realized.cols() == m,
              "realized matrix has wrong shape");

  const TimingEvaluator evaluator(graph, platform, plan);
  const ScheduleTiming planned = evaluator.full_timing(assigned_durations(expected, plan));
  const ScheduleTiming actual = evaluator.full_timing(assigned_durations(realized, plan));
  const double slip_budget = threshold * planned.makespan;

  // Trigger: earliest realized completion that slips beyond the budget.
  double trigger = std::numeric_limits<double>::infinity();
  for (const TaskId t : id_range<TaskId>(n)) {
    if (actual.finish[t] > planned.finish[t] + slip_budget) {
      trigger = std::min(trigger, actual.finish[t]);
    }
  }

  if (!std::isfinite(trigger)) {
    // Plan held: pure static execution.
    return HybridRunResult{plan, actual.makespan, false, 0.0, 0};
  }

  // Freeze everything that had already started by the trigger instant under
  // the static execution; re-dispatch the rest online.
  IdVector<TaskId, bool> frozen(n, false);
  for (const TaskId t : id_range<TaskId>(n)) {
    frozen[t] = actual.start[t] <= trigger;
  }

  IdVector<TaskId, double> finish(n, 0.0);
  IdVector<TaskId, ProcId> proc_of(n, kNoProc);
  IdVector<ProcId, double> proc_avail(m, 0.0);
  ScheduleBuilder builder(n, m);
  double makespan = 0.0;
  for (const ProcId p : id_range<ProcId>(m)) {
    for (const TaskId t : plan.sequence(p)) {
      if (!frozen[t]) continue;
      builder.append(p, t);
      finish[t] = actual.finish[t];
      proc_of[t] = p;
      proc_avail[p] = std::max(proc_avail[p], actual.finish[t]);
      makespan = std::max(makespan, actual.finish[t]);
    }
  }

  // Online EFT over the unfrozen tasks (dispatch order: upward rank on the
  // planning costs; ready = all predecessors completed).
  const auto rank = heft_upward_ranks(graph, platform, expected);
  const auto cmp = [&rank](TaskId a, TaskId b) {
    const double ra = rank[a.index()];
    const double rb = rank[b.index()];
    if (ra != rb) return ra < rb;
    return a > b;
  };
  std::priority_queue<TaskId, std::vector<TaskId>, decltype(cmp)> ready(cmp);
  IdVector<TaskId, std::size_t> pending(n, 0);
  std::size_t redispatched = 0;
  for (const TaskId t : id_range<TaskId>(n)) {
    if (frozen[t]) continue;
    ++redispatched;
    std::size_t unfinished_preds = 0;
    for (const EdgeRef& e : graph.predecessors(t)) {
      if (!frozen[e.task]) ++unfinished_preds;
    }
    pending[t] = unfinished_preds;
    if (unfinished_preds == 0) ready.push(t);
  }

  while (!ready.empty()) {
    const TaskId t = ready.top();
    ready.pop();
    const auto earliest_start = [&](ProcId p) {
      // Re-dispatch decisions happen at/after the trigger instant.
      double es = std::max(proc_avail[p], trigger);
      for (const EdgeRef& e : graph.predecessors(t)) {
        es = std::max(es, finish[e.task] +
                              platform.comm_cost(e.data, proc_of[e.task], p));
      }
      return es;
    };
    ProcId best_p{0};
    double best_eft = earliest_start(best_p) + expected(t.index(), 0);
    for (ProcId p = 1; p.index() < m; ++p) {
      const double eft = earliest_start(p) + expected(t.index(), p.index());
      if (eft < best_eft) {
        best_eft = eft;
        best_p = p;
      }
    }
    const double start = earliest_start(best_p);
    finish[t] = start + realized(t.index(), best_p.index());
    proc_of[t] = best_p;
    proc_avail[best_p] = finish[t];
    builder.append(best_p, t);
    makespan = std::max(makespan, finish[t]);
    for (const EdgeRef& e : graph.successors(t)) {
      if (!frozen[e.task] && --pending[e.task] == 0) ready.push(e.task);
    }
  }

  // Sequence order per processor: frozen tasks (started <= trigger, in plan
  // order) precede all re-dispatched ones (started >= trigger, in dispatch
  // order), so the append order above is the execution order. The frozen set
  // is predecessor-closed — a frozen task's predecessors finished before it
  // started, hence started before the trigger themselves — so no edge runs
  // from an unfrozen task to a frozen one and the schedule is consistent.
  return HybridRunResult{std::move(builder).build(), makespan, true, trigger,
                         redispatched};
}

RobustnessReport evaluate_hybrid(const ProblemInstance& instance, const Schedule& plan,
                                 double threshold, const MonteCarloConfig& config,
                                 double* rescheduling_rate) {
  RTS_REQUIRE(config.realizations > 0, "need at least one realization");
  RTS_REQUIRE(threshold >= 0.0, "threshold must be non-negative");
  instance.validate();
  const std::size_t n = instance.task_count();
  const std::size_t m = instance.proc_count();

  RobustnessReport report;
  report.realizations = config.realizations;
  report.expected_makespan =
      compute_makespan(instance.graph, instance.platform, plan, instance.expected);
  const double m0 = report.expected_makespan;

  std::vector<double> samples(config.realizations);
  std::vector<std::uint8_t> tripped(config.realizations, 0);
  const Rng root(config.seed);

  if (config.batched) {
    // Fast path: hoist the plan compile + planned timing out of the
    // realization loop (simulate_hybrid recomputes both per call) and run
    // the static execution of `lane_width` realizations per batched pass.
    // A lane whose every finish stays within the slip budget never triggers
    // a reschedule, and its static makespan is bit-identical to
    // simulate_hybrid's untripped result — only tripped lanes fall back to
    // the scalar online re-dispatch. Trigger detection compares the same
    // bits as the scalar path, so the tripped set is identical too.
    const TimingEvaluator evaluator(instance.graph, instance.platform, plan);
    const ScheduleTiming planned =
        evaluator.full_timing(assigned_durations(instance.expected, plan));
    const double slip_budget = threshold * planned.makespan;
    const BatchedGsSweep sweep(evaluator);
    const std::size_t lane_width = std::max<std::size_t>(1, config.lane_width);
    const std::size_t total = config.realizations;
    const auto lane_blocks =
        static_cast<std::int64_t>((total + lane_width - 1) / lane_width);
    std::vector<std::size_t> assigned_proc(n);
    for (const TaskId t : id_range<TaskId>(n)) {
      assigned_proc[t.index()] = plan.proc_of(t).index();
    }
#ifdef RTS_HAVE_OPENMP
#pragma omp parallel default(none) \
    shared(instance, plan, threshold, n, m, lane_width, total, lane_blocks, \
               root, sweep, planned, slip_budget, assigned_proc, samples, \
               tripped)
#endif
    {
      std::vector<Matrix<double>> realized(lane_width, Matrix<double>(n, m));
      std::vector<double> durations(n * lane_width);
      std::vector<double> finish(n * lane_width);
      std::vector<double> makespans(lane_width);
#ifdef RTS_HAVE_OPENMP
#pragma omp for schedule(static)
#endif
      for (std::int64_t b = 0; b < lane_blocks; ++b) {
        const std::size_t i0 = static_cast<std::size_t>(b) * lane_width;
        const std::size_t lanes = std::min(lane_width, total - i0);
        for (std::size_t l = 0; l < lanes; ++l) {
          Rng rng = root.substream(static_cast<std::uint64_t>(i0 + l));
          Matrix<double>& r = realized[l];
          // Full n x m draw in the scalar path's exact order: a realization's
          // matrix does not depend on the lane it lands in.
          for (std::size_t t = 0; t < n; ++t) {
            for (std::size_t p = 0; p < m; ++p) {
              r(t, p) =
                  sample_realized_duration(rng, instance.bcet(t, p), instance.ul(t, p));
            }
          }
          for (std::size_t t = 0; t < n; ++t) {
            durations[t * lanes + l] = r(t, assigned_proc[t]);
          }
        }
        sweep.forward(std::span<const double>(durations).first(n * lanes), lanes,
                      finish, makespans);
        for (std::size_t l = 0; l < lanes; ++l) {
          bool trip = false;
          for (const TaskId t : id_range<TaskId>(n)) {
            if (finish[t.index() * lanes + l] > planned.finish[t] + slip_budget) {
              trip = true;
              break;
            }
          }
          if (!trip) {
            samples[i0 + l] = makespans[l];
            tripped[i0 + l] = 0;
            continue;
          }
          const auto run = simulate_hybrid(instance.graph, instance.platform, plan,
                                           instance.expected, realized[l], threshold);
          samples[i0 + l] = run.makespan;
          tripped[i0 + l] = run.rescheduled ? 1 : 0;
        }
      }
    }
  } else {
    const auto total = static_cast<std::int64_t>(config.realizations);
#ifdef RTS_HAVE_OPENMP
#pragma omp parallel default(none) \
    shared(instance, plan, threshold, n, m, total, root, samples, tripped)
#endif
    {
      Matrix<double> realized(n, m);
#ifdef RTS_HAVE_OPENMP
#pragma omp for schedule(static)
#endif
      for (std::int64_t i = 0; i < total; ++i) {
        Rng rng = root.substream(static_cast<std::uint64_t>(i));
        for (std::size_t t = 0; t < n; ++t) {
          for (std::size_t p = 0; p < m; ++p) {
            realized(t, p) =
                sample_realized_duration(rng, instance.bcet(t, p), instance.ul(t, p));
          }
        }
        // rts-lint: allow(no-scalar-mc-in-loop) — scalar oracle fallback;
        // simulate_hybrid recompiles the plan and evaluates two full timings
        // per realization.
        const auto run = simulate_hybrid(instance.graph, instance.platform, plan,
                                         instance.expected, realized, threshold);
        samples[static_cast<std::size_t>(i)] = run.makespan;
        tripped[static_cast<std::size_t>(i)] = run.rescheduled ? 1 : 0;
      }
    }
  }

  RunningStats stats;
  RunningStats tardy;
  std::size_t misses = 0;
  std::size_t trips = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    stats.add(samples[i]);
    tardy.add(std::max(0.0, samples[i] - m0) / m0);
    if (samples[i] > m0) ++misses;
    trips += tripped[i];
  }
  report.mean_realized_makespan = stats.mean();
  report.stddev_realized_makespan = stats.stddev();
  report.max_realized_makespan = stats.max();
  report.p50_realized_makespan = percentile(samples, 50.0);
  report.p95_realized_makespan = percentile(samples, 95.0);
  report.p99_realized_makespan = percentile(samples, 99.0);
  report.mean_tardiness = tardy.mean();
  report.miss_rate =
      static_cast<double>(misses) / static_cast<double>(config.realizations);
  report.r1 = report.mean_tardiness > 0.0
                  ? std::min(config.reciprocal_cap, 1.0 / report.mean_tardiness)
                  : config.reciprocal_cap;
  report.r2 = report.miss_rate > 0.0
                  ? std::min(config.reciprocal_cap, 1.0 / report.miss_rate)
                  : config.reciprocal_cap;
  if (rescheduling_rate != nullptr) {
    *rescheduling_rate =
        static_cast<double>(trips) / static_cast<double>(config.realizations);
  }
  if (config.collect_samples) report.samples = std::move(samples);
  return report;
}

}  // namespace rts
