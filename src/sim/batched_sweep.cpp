#include "sim/batched_sweep.hpp"

#include <algorithm>
#include <cstdint>

#include "util/error.hpp"

namespace rts {

// The lane kernels come in two flavors with identical per-lane operand
// order (so results are bit-identical between them):
//
//  * fixed-width templates (W = 4/8/16/32, the widths MonteCarloConfig and
//    the bench exercise): the lane row lives in a local `double acc[W]`
//    array, which the compiler proves alias-free and keeps in SIMD
//    registers across the whole edge loop — one load + add + max per edge
//    per register instead of a store/reload round trip through `finish`;
//  * a runtime-width fallback (tail groups, unusual widths) that relaxes
//    the `finish` rows in place.
//
// Packing independent lanes into one vector register never changes a lane's
// result: each lane still evaluates the scalar sweep's exact max/+ chain in
// the same order (src/ pins -ffp-contract=off so nothing is fused).

namespace {

/// Raw pointers into a compiled sweep's topo-ordered CSR.
struct GsView {
  const std::uint32_t* topo;
  const std::int64_t* off;  // EdgeId-domain offsets; 64-bit by design
  const std::uint32_t* pred;
  const double* cost;
  std::size_t n;
};

template <std::size_t W>
void forward_w(const GsView& g, const double* dur, double* fin, double* ms) {
  double msa[W];
  for (std::size_t l = 0; l < W; ++l) msa[l] = 0.0;
  for (std::size_t s = 0; s < g.n; ++s) {
    const std::size_t t = g.topo[s];
    // acc accumulates the lane start times, exactly as the scalar sweep's
    // `start` accumulator: 0, relaxed over predecessors, then + duration.
    double acc[W];
    for (std::size_t l = 0; l < W; ++l) acc[l] = 0.0;
    for (std::int64_t k = g.off[s]; k < g.off[s + 1]; ++k) {
      const double* fp = fin + static_cast<std::size_t>(g.pred[k]) * W;
      const double c = g.cost[k];
      for (std::size_t l = 0; l < W; ++l) acc[l] = std::max(acc[l], fp[l] + c);
    }
    const double* dt = dur + t * W;
    double* ft = fin + t * W;
    for (std::size_t l = 0; l < W; ++l) {
      acc[l] += dt[l];
      ft[l] = acc[l];
      msa[l] = std::max(msa[l], acc[l]);
    }
  }
  for (std::size_t l = 0; l < W; ++l) ms[l] = msa[l];
}

void forward_generic(const GsView& g, std::size_t lanes, const double* dur,
                     double* fin, double* ms) {
  for (std::size_t l = 0; l < lanes; ++l) ms[l] = 0.0;
  for (std::size_t s = 0; s < g.n; ++s) {
    const std::size_t t = g.topo[s];
    double* ft = fin + t * lanes;
    for (std::size_t l = 0; l < lanes; ++l) ft[l] = 0.0;
    for (std::int64_t k = g.off[s]; k < g.off[s + 1]; ++k) {
      const double* fp = fin + static_cast<std::size_t>(g.pred[k]) * lanes;
      const double c = g.cost[k];
      for (std::size_t l = 0; l < lanes; ++l) {
        ft[l] = std::max(ft[l], fp[l] + c);
      }
    }
    const double* dt = dur + t * lanes;
    for (std::size_t l = 0; l < lanes; ++l) {
      ft[l] += dt[l];
      ms[l] = std::max(ms[l], ft[l]);
    }
  }
}

template <std::size_t W>
void forward_backward_w(const GsView& g, const double* dur, double* st,
                        double* fin, double* bot, double* sl, double* ms) {
  double msa[W];
  for (std::size_t l = 0; l < W; ++l) msa[l] = 0.0;

  // Forward sweep: start == top level Tl, finish = Tl + duration.
  for (std::size_t s = 0; s < g.n; ++s) {
    const std::size_t t = g.topo[s];
    double acc[W];
    for (std::size_t l = 0; l < W; ++l) acc[l] = 0.0;
    for (std::int64_t k = g.off[s]; k < g.off[s + 1]; ++k) {
      const double* fp = fin + static_cast<std::size_t>(g.pred[k]) * W;
      const double c = g.cost[k];
      for (std::size_t l = 0; l < W; ++l) acc[l] = std::max(acc[l], fp[l] + c);
    }
    double* tt = st + t * W;
    double* ft = fin + t * W;
    const double* dt = dur + t * W;
    for (std::size_t l = 0; l < W; ++l) {
      tt[l] = acc[l];
      acc[l] += dt[l];
      ft[l] = acc[l];
      msa[l] = std::max(msa[l], acc[l]);
    }
  }

  // Backward sweep on the same predecessor edges, in reverse topological
  // order; bottom doubles as the push-up accumulator exactly like the
  // scalar full_timing_into. A node's own row is final when its slot is
  // reached (all successors already pushed into it), so it can be hoisted
  // into registers for the edge loop.
  for (std::size_t i = 0; i < g.n * W; ++i) bot[i] = 0.0;
  for (std::size_t s = g.n; s-- > 0;) {
    const std::size_t t = g.topo[s];
    double* btp = bot + t * W;
    const double* dt = dur + t * W;
    double bt[W];
    for (std::size_t l = 0; l < W; ++l) {
      bt[l] = btp[l] + dt[l];
      btp[l] = bt[l];
    }
    for (std::int64_t k = g.off[s]; k < g.off[s + 1]; ++k) {
      double* bp = bot + static_cast<std::size_t>(g.pred[k]) * W;
      const double c = g.cost[k];
      for (std::size_t l = 0; l < W; ++l) bp[l] = std::max(bp[l], c + bt[l]);
    }
  }

  // Slack, with the scalar sweep's exact operand order:
  // max(0, (makespan - Bl) - Tl).
  for (std::size_t t = 0; t < g.n; ++t) {
    const double* bt = bot + t * W;
    const double* tt = st + t * W;
    double* lt = sl + t * W;
    for (std::size_t l = 0; l < W; ++l) {
      lt[l] = std::max(0.0, msa[l] - bt[l] - tt[l]);
    }
  }
  for (std::size_t l = 0; l < W; ++l) ms[l] = msa[l];
}

void forward_backward_generic(const GsView& g, std::size_t lanes,
                              const double* dur, double* st, double* fin,
                              double* bot, double* sl, double* ms) {
  for (std::size_t l = 0; l < lanes; ++l) ms[l] = 0.0;

  for (std::size_t s = 0; s < g.n; ++s) {
    const std::size_t t = g.topo[s];
    double* ft = fin + t * lanes;
    for (std::size_t l = 0; l < lanes; ++l) ft[l] = 0.0;
    for (std::int64_t k = g.off[s]; k < g.off[s + 1]; ++k) {
      const double* fp = fin + static_cast<std::size_t>(g.pred[k]) * lanes;
      const double c = g.cost[k];
      for (std::size_t l = 0; l < lanes; ++l) {
        ft[l] = std::max(ft[l], fp[l] + c);
      }
    }
    double* tt = st + t * lanes;
    const double* dt = dur + t * lanes;
    for (std::size_t l = 0; l < lanes; ++l) {
      tt[l] = ft[l];
      ft[l] += dt[l];
      ms[l] = std::max(ms[l], ft[l]);
    }
  }

  for (std::size_t i = 0; i < g.n * lanes; ++i) bot[i] = 0.0;
  for (std::size_t s = g.n; s-- > 0;) {
    const std::size_t t = g.topo[s];
    double* bt = bot + t * lanes;
    const double* dt = dur + t * lanes;
    for (std::size_t l = 0; l < lanes; ++l) bt[l] += dt[l];
    for (std::int64_t k = g.off[s]; k < g.off[s + 1]; ++k) {
      double* bp = bot + static_cast<std::size_t>(g.pred[k]) * lanes;
      const double c = g.cost[k];
      for (std::size_t l = 0; l < lanes; ++l) {
        bp[l] = std::max(bp[l], c + bt[l]);
      }
    }
  }

  for (std::size_t t = 0; t < g.n; ++t) {
    const double* bt = bot + t * lanes;
    const double* tt = st + t * lanes;
    double* lt = sl + t * lanes;
    for (std::size_t l = 0; l < lanes; ++l) {
      lt[l] = std::max(0.0, ms[l] - bt[l] - tt[l]);
    }
  }
}

/// Partial-sweep view: pinned slots carry a frozen finish instead of edges.
struct PartialView {
  const std::uint32_t* topo;
  const std::uint8_t* pinned;
  const double* pinned_finish;
  const std::int64_t* off;  // EdgeId-domain offsets; 64-bit by design
  const std::uint32_t* pred;
  const double* cost;
  std::size_t n;
  double floor;
};

template <std::size_t W>
void partial_forward_w(const PartialView& g, const double* dur, double* fin) {
  for (std::size_t s = 0; s < g.n; ++s) {
    const std::size_t t = g.topo[s];
    double* ft = fin + t * W;
    if (g.pinned[s] != 0) {
      const double pf = g.pinned_finish[s];
      for (std::size_t l = 0; l < W; ++l) ft[l] = pf;
      continue;
    }
    double acc[W];
    for (std::size_t l = 0; l < W; ++l) acc[l] = g.floor;
    for (std::int64_t k = g.off[s]; k < g.off[s + 1]; ++k) {
      const double* fp = fin + static_cast<std::size_t>(g.pred[k]) * W;
      const double c = g.cost[k];
      for (std::size_t l = 0; l < W; ++l) acc[l] = std::max(acc[l], fp[l] + c);
    }
    const double* dt = dur + t * W;
    for (std::size_t l = 0; l < W; ++l) ft[l] = acc[l] + dt[l];
  }
}

void partial_forward_generic(const PartialView& g, std::size_t lanes,
                             const double* dur, double* fin) {
  for (std::size_t s = 0; s < g.n; ++s) {
    const std::size_t t = g.topo[s];
    double* ft = fin + t * lanes;
    if (g.pinned[s] != 0) {
      const double pf = g.pinned_finish[s];
      for (std::size_t l = 0; l < lanes; ++l) ft[l] = pf;
      continue;
    }
    for (std::size_t l = 0; l < lanes; ++l) ft[l] = g.floor;
    for (std::int64_t k = g.off[s]; k < g.off[s + 1]; ++k) {
      const double* fp = fin + static_cast<std::size_t>(g.pred[k]) * lanes;
      const double c = g.cost[k];
      for (std::size_t l = 0; l < lanes; ++l) {
        ft[l] = std::max(ft[l], fp[l] + c);
      }
    }
    const double* dt = dur + t * lanes;
    for (std::size_t l = 0; l < lanes; ++l) ft[l] += dt[l];
  }
}

}  // namespace

BatchedGsSweep::BatchedGsSweep(const TimingEvaluator& evaluator) {
  RTS_REQUIRE(evaluator.compiled(),
              "evaluator has no compiled schedule; rebuild() before batching");
  n_ = evaluator.task_count();
  const std::span<const TaskId> topo = evaluator.gs_topological_order();
  const IdSpan<TaskId, const EdgeId> off = evaluator.gs_pred_offsets();
  const IdSpan<EdgeId, const TaskId> preds = evaluator.gs_pred_tasks();
  const IdSpan<EdgeId, const double> costs = evaluator.gs_pred_costs();

  // Re-pack the task-id-indexed CSR into topological order: the sweep then
  // walks node_off_/edge_pred_/edge_cost_ front to back with no per-node
  // indirection. Edge order within a node is preserved verbatim.
  topo_.resize(n_);
  node_off_.assign(n_ + 1, 0);
  edge_pred_.resize(preds.size());
  edge_cost_.resize(costs.size());
  std::int64_t e = 0;
  for (std::size_t s = 0; s < n_; ++s) {
    const TaskId t = topo[s];
    topo_[s] = static_cast<std::uint32_t>(t.index());
    const EdgeId end = off[t.next()];
    for (EdgeId k = off[t]; k < end; ++k) {
      edge_pred_[static_cast<std::size_t>(e)] =
          static_cast<std::uint32_t>(preds[k].index());
      edge_cost_[static_cast<std::size_t>(e)] = costs[k];
      ++e;
    }
    node_off_[s + 1] = e;
  }
}

void BatchedGsSweep::forward(std::span<const double> durations, std::size_t lanes,
                             std::span<double> finish,
                             std::span<double> makespans) const {
  RTS_REQUIRE(lanes > 0, "lane count must be positive");
  RTS_REQUIRE(durations.size() >= n_ * lanes, "duration buffer too small");
  RTS_REQUIRE(finish.size() >= n_ * lanes, "finish buffer too small");
  RTS_REQUIRE(makespans.size() >= lanes, "makespan buffer too small");

  const GsView g{topo_.data(), node_off_.data(), edge_pred_.data(),
                 edge_cost_.data(), n_};
  const double* dur = durations.data();
  double* fin = finish.data();
  double* ms = makespans.data();
  switch (lanes) {
    case 4: forward_w<4>(g, dur, fin, ms); return;
    case 8: forward_w<8>(g, dur, fin, ms); return;
    case 16: forward_w<16>(g, dur, fin, ms); return;
    case 32: forward_w<32>(g, dur, fin, ms); return;
    default: forward_generic(g, lanes, dur, fin, ms); return;
  }
}

void BatchedGsSweep::forward_backward(std::span<const double> durations,
                                      std::size_t lanes, std::span<double> start,
                                      std::span<double> finish,
                                      std::span<double> bottom,
                                      std::span<double> slack,
                                      std::span<double> makespans) const {
  RTS_REQUIRE(lanes > 0, "lane count must be positive");
  RTS_REQUIRE(durations.size() >= n_ * lanes, "duration buffer too small");
  RTS_REQUIRE(start.size() >= n_ * lanes, "start buffer too small");
  RTS_REQUIRE(finish.size() >= n_ * lanes, "finish buffer too small");
  RTS_REQUIRE(bottom.size() >= n_ * lanes, "bottom-level buffer too small");
  RTS_REQUIRE(slack.size() >= n_ * lanes, "slack buffer too small");
  RTS_REQUIRE(makespans.size() >= lanes, "makespan buffer too small");

  const GsView g{topo_.data(), node_off_.data(), edge_pred_.data(),
                 edge_cost_.data(), n_};
  const double* dur = durations.data();
  double* st = start.data();
  double* fin = finish.data();
  double* bot = bottom.data();
  double* sl = slack.data();
  double* ms = makespans.data();
  switch (lanes) {
    case 4: forward_backward_w<4>(g, dur, st, fin, bot, sl, ms); return;
    case 8: forward_backward_w<8>(g, dur, st, fin, bot, sl, ms); return;
    case 16: forward_backward_w<16>(g, dur, st, fin, bot, sl, ms); return;
    case 32: forward_backward_w<32>(g, dur, st, fin, bot, sl, ms); return;
    default:
      forward_backward_generic(g, lanes, dur, st, fin, bot, sl, ms);
      return;
  }
}

BatchedPartialSweep::BatchedPartialSweep(const TaskGraph& graph,
                                         const Platform& platform,
                                         const PartialSchedule& partial) {
  RTS_REQUIRE(partial.well_formed(graph), "partial schedule is not well formed");
  n_ = graph.task_count();
  floor_ = std::max(partial.decision_time, 0.0);

  const Schedule& schedule = partial.schedule;
  const TimingEvaluator evaluator(graph, platform, schedule);
  const std::span<const TaskId> topo = evaluator.gs_topological_order();

  // Edge enumeration mirrors partial_timing(): graph predecessors in edge
  // order, then the processor predecessor as an unconditional zero-cost edge
  // (unlike the static Gs compile, partial_timing relaxes it even when it is
  // also a graph predecessor — idempotent, but mirrored for exactness).
  // Frozen tasks get no edges at all: history is pinned, not recomputed.
  topo_.resize(n_);
  pinned_.assign(n_, 0);
  pinned_finish_.assign(n_, 0.0);
  node_off_.assign(n_ + 1, 0);
  edge_pred_.clear();
  edge_cost_.clear();
  for (std::size_t s = 0; s < n_; ++s) {
    const TaskId t = topo[s];
    topo_[s] = static_cast<std::uint32_t>(t.index());
    if (partial.frozen[t] != 0) {
      pinned_[s] = 1;
      pinned_finish_[s] = partial.frozen_finish[t];
    } else {
      const ProcId pt = schedule.proc_of(t);
      for (const EdgeRef& e : graph.predecessors(t)) {
        edge_pred_.push_back(static_cast<std::uint32_t>(e.task.index()));
        edge_cost_.push_back(
            platform.comm_cost(e.data, schedule.proc_of(e.task), pt));
      }
      const TaskId pp = schedule.proc_predecessor(t);
      if (pp != kNoTask) {
        edge_pred_.push_back(static_cast<std::uint32_t>(pp.index()));
        edge_cost_.push_back(0.0);
      }
    }
    node_off_[s + 1] = static_cast<std::int64_t>(edge_pred_.size());
  }
}

void BatchedPartialSweep::forward(std::span<const double> durations,
                                  std::size_t lanes,
                                  std::span<double> finish) const {
  RTS_REQUIRE(lanes > 0, "lane count must be positive");
  RTS_REQUIRE(durations.size() >= n_ * lanes, "duration buffer too small");
  RTS_REQUIRE(finish.size() >= n_ * lanes, "finish buffer too small");

  const PartialView g{topo_.data(),      pinned_.data(), pinned_finish_.data(),
                      node_off_.data(),  edge_pred_.data(), edge_cost_.data(),
                      n_,                floor_};
  const double* dur = durations.data();
  double* fin = finish.data();
  switch (lanes) {
    case 4: partial_forward_w<4>(g, dur, fin); return;
    case 8: partial_forward_w<8>(g, dur, fin); return;
    case 16: partial_forward_w<16>(g, dur, fin); return;
    case 32: partial_forward_w<32>(g, dur, fin); return;
    default: partial_forward_generic(g, lanes, dur, fin); return;
  }
}

}  // namespace rts
