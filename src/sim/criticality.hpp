#pragma once
// Criticality analysis — the robustness perspective of Bölöni & Marinescu
// ("Robust scheduling of metaprograms", J. Scheduling 2002), which the
// paper's related-work section discusses: a schedule is robust when few of
// its components are critical, and the *entropy* of the criticality
// distribution measures how concentrated the risk is.
//
// Under each Monte-Carlo realization we mark every task lying on a critical
// path of the disjunctive graph (zero float given the realized durations).
// Aggregating over realizations yields:
//   * the per-task criticality index p_i = P(task i is critical),
//   * the expected number of critical tasks,
//   * the count of "safe" tasks (p_i below a threshold — Bölöni's safe
//     components),
//   * the normalized entropy of the distribution q_i = p_i / Σp_j, in [0,1]
//     (1 = risk evenly spread, 0 = one dominant failure path).

#include <cstdint>
#include <vector>

#include "sched/schedule.hpp"
#include "workload/problem.hpp"

namespace rts {

/// Knobs of the criticality analysis.
struct CriticalityConfig {
  std::size_t realizations = 1000;
  std::uint64_t seed = 42;
  /// A task with criticality index <= this is counted as safe.
  double safe_threshold = 0.05;
  /// Tolerance (relative to the makespan) when testing zero float.
  double float_tolerance = 1e-9;
  /// Lane-blocked batched sweep (sim/batched_sweep): `lane_width`
  /// realizations per forward+backward pass over Gs. Bit-identical to the
  /// scalar sweep (`batched = false`) for any lane width — pure performance
  /// knobs, mirroring MonteCarloConfig.
  bool batched = true;
  std::size_t lane_width = 32;
};

/// Aggregated criticality report.
struct CriticalityReport {
  std::vector<double> criticality_index;  ///< p_i per task
  double expected_critical_tasks = 0.0;   ///< E[#critical per realization]
  std::size_t safe_tasks = 0;             ///< #tasks with p_i <= threshold
  double normalized_entropy = 0.0;        ///< H(q) / log(n), in [0,1]
  std::size_t realizations = 0;
};

/// Monte-Carlo criticality analysis of `schedule` on `instance`.
/// Deterministic in the seed; realizations use the same generative model as
/// evaluate_robustness.
CriticalityReport analyze_criticality(const ProblemInstance& instance,
                                      const Schedule& schedule,
                                      const CriticalityConfig& config);

/// Tasks critical under one fixed duration vector (exposed for tests):
/// true for every task with zero float on the disjunctive graph.
std::vector<bool> critical_tasks(const TaskGraph& graph, const Platform& platform,
                                 const Schedule& schedule,
                                 std::span<const double> durations,
                                 double float_tolerance = 1e-9);

}  // namespace rts
