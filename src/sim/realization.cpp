#include "sim/realization.hpp"

#include "util/error.hpp"
#include "workload/uncertainty.hpp"

namespace rts {

RealizationSampler::RealizationSampler(const ProblemInstance& instance,
                                       const Schedule& schedule) {
  const std::size_t n = instance.task_count();
  RTS_REQUIRE(schedule.task_count() == n, "schedule size does not match instance");
  bcet_.resize(n);
  ul_.resize(n);
  expected_.resize(n);
  for (std::size_t t = 0; t < n; ++t) {
    const auto p = static_cast<std::size_t>(schedule.proc_of(static_cast<TaskId>(t)));
    RTS_REQUIRE(p < instance.proc_count(),
                "schedule assigns a processor outside the instance platform");
    bcet_[t] = instance.bcet(t, p);
    ul_[t] = instance.ul(t, p);
    expected_[t] = instance.expected(t, p);
  }
}

void RealizationSampler::sample(Rng& rng, std::span<double> durations) const {
  RTS_REQUIRE(durations.size() == bcet_.size(), "duration buffer has wrong size");
  for (std::size_t t = 0; t < bcet_.size(); ++t) {
    durations[t] = sample_realized_duration(rng, bcet_[t], ul_[t]);
  }
}

}  // namespace rts
