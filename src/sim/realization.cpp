#include "sim/realization.hpp"

#include <cstdint>

#include "util/error.hpp"
#include "workload/uncertainty.hpp"

namespace rts {

namespace {

inline std::uint64_t rotl_u64(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// Draw one realization per lane with W substreams stepped in lockstep.
// Structure-of-arrays states: the l-loops are over independent lanes, so
// the auto-vectorizer runs the xoshiro256** update and the uniform
// transform on all W lanes per instruction. Each lane reproduces, bit for
// bit, Rng(hash_combine_u64(root_seed, stream)) followed by sample()'s
// draw sequence: splitmix64 state expansion in word order, one
// next_double() per task in task order, and sample_uniform's exact
// `lo + (hi - lo) * u` operand order.
template <std::size_t W>
void sample_lanes_w(const double* bcet, const double* ul, std::size_t n,
                    std::uint64_t root_seed, std::uint64_t first_stream,
                    double* out) {
  std::uint64_t s0[W];
  std::uint64_t s1[W];
  std::uint64_t s2[W];
  std::uint64_t s3[W];
  for (std::size_t l = 0; l < W; ++l) {
    std::uint64_t sm = hash_combine_u64(root_seed, first_stream + l);
    s0[l] = splitmix64(sm);
    s1[l] = splitmix64(sm);
    s2[l] = splitmix64(sm);
    s3[l] = splitmix64(sm);
  }
  for (std::size_t t = 0; t < n; ++t) {
    const double lo = bcet[t];
    const double hi = (2.0 * ul[t] - 1.0) * bcet[t];
    const double d = hi - lo;
    double* row = out + t * W;
    for (std::size_t l = 0; l < W; ++l) {
      const std::uint64_t x = rotl_u64(s1[l] * 5, 7) * 9;
      const std::uint64_t tmp = s1[l] << 17;
      s2[l] ^= s0[l];
      s3[l] ^= s1[l];
      s1[l] ^= s2[l];
      s0[l] ^= s3[l];
      s2[l] ^= tmp;
      s3[l] = rotl_u64(s3[l], 45);
      const double u = static_cast<double>(x >> 11) * 0x1.0p-53;
      row[l] = lo + d * u;
    }
  }
}

}  // namespace

RealizationSampler::RealizationSampler(const ProblemInstance& instance,
                                       const Schedule& schedule) {
  const std::size_t n = instance.task_count();
  RTS_REQUIRE(schedule.task_count() == n, "schedule size does not match instance");
  bcet_.resize(n);
  ul_.resize(n);
  expected_.resize(n);
  for (const TaskId t : id_range<TaskId>(n)) {
    const ProcId p = schedule.proc_of(t);
    RTS_REQUIRE(p.index() < instance.proc_count(),
                "schedule assigns a processor outside the instance platform");
    bcet_[t.index()] = instance.bcet(t.index(), p.index());
    ul_[t.index()] = instance.ul(t.index(), p.index());
    expected_[t.index()] = instance.expected(t.index(), p.index());
  }
}

void RealizationSampler::sample(Rng& rng, std::span<double> durations) const {
  RTS_REQUIRE(durations.size() == bcet_.size(), "duration buffer has wrong size");
  for (std::size_t t = 0; t < bcet_.size(); ++t) {
    durations[t] = sample_realized_duration(rng, bcet_[t], ul_[t]);
  }
}

void RealizationSampler::sample_lane(Rng& rng, std::span<double> durations,
                                     std::size_t lane, std::size_t stride) const {
  RTS_REQUIRE(lane < stride, "lane index outside the stride");
  RTS_REQUIRE(durations.size() >= bcet_.size() * stride,
              "duration buffer has wrong size");
  for (std::size_t t = 0; t < bcet_.size(); ++t) {
    durations[t * stride + lane] = sample_realized_duration(rng, bcet_[t], ul_[t]);
  }
}

void RealizationSampler::sample_lanes(const Rng& root, std::uint64_t first_stream,
                                      std::span<double> durations,
                                      std::size_t lanes) const {
  const std::size_t n = bcet_.size();
  RTS_REQUIRE(lanes > 0, "lane count must be positive");
  RTS_REQUIRE(durations.size() >= n * lanes, "duration buffer too small");
  // sample_realized_duration's preconditions, checked once per call instead
  // of once per draw.
  for (std::size_t t = 0; t < n; ++t) {
    RTS_REQUIRE(bcet_[t] > 0.0, "best-case execution time must be positive");
    RTS_REQUIRE(ul_[t] >= 1.0, "uncertainty level must be >= 1");
  }
  const std::uint64_t seed = root.seed();
  double* out = durations.data();
  switch (lanes) {
    case 4: sample_lanes_w<4>(bcet_.data(), ul_.data(), n, seed, first_stream, out); return;
    case 8: sample_lanes_w<8>(bcet_.data(), ul_.data(), n, seed, first_stream, out); return;
    case 16: sample_lanes_w<16>(bcet_.data(), ul_.data(), n, seed, first_stream, out); return;
    case 32: sample_lanes_w<32>(bcet_.data(), ul_.data(), n, seed, first_stream, out); return;
    default:
      // Tail groups and unusual widths: the scalar per-lane path (same
      // substreams, same draw order — bit-identical, just unbatched).
      for (std::size_t l = 0; l < lanes; ++l) {
        Rng rng = root.substream(first_stream + l);
        sample_lane(rng, durations, l, lanes);
      }
      return;
  }
}

}  // namespace rts
