#pragma once
// Monte-Carlo robustness evaluation (paper Definitions 3.6 and 3.7):
//
//   relative tardiness  δ_i = max(0, M_i - M0) / M0   over realizations i,
//   R1 = 1 / E[δ],
//   miss rate           α  = |{i : M_i > M0}| / N,
//   R2 = 1 / α.
//
// M0 is the expected makespan — the Claim 3.2 evaluation of the schedule
// under the expected durations UL * BCET.
//
// Realizations are embarrassingly parallel; the sweep is OpenMP-parallel with
// one RNG substream per realization index, so results are bit-identical for a
// fixed seed regardless of thread count.
//
// When no realization is tardy both reciprocals are infinite; we report the
// documented finite cap `reciprocal_cap` instead so downstream log-ratio
// comparisons stay finite (raw tardiness and miss rate are always reported
// too — prefer them for arithmetic).

#include <cstdint>
#include <vector>

#include "sched/schedule.hpp"
#include "workload/problem.hpp"

namespace rts {

/// Knobs of the robustness evaluation.
struct MonteCarloConfig {
  std::size_t realizations = 1000;   ///< N, the paper uses 1000
  std::uint64_t seed = 42;           ///< substream root for the realizations
  double reciprocal_cap = 1e12;      ///< cap for R1/R2 when nothing is tardy
  bool collect_samples = false;      ///< keep all realized makespans
  /// OpenMP thread count for the realization sweep; 0 = the OpenMP runtime
  /// default (all hardware threads). Reports are bit-identical for any value
  /// (per-realization RNG substreams; see the header comment), so this is a
  /// pure performance knob. Ignored when built without OpenMP.
  std::size_t threads = 0;
  /// Use the lane-blocked batched sweep (sim/batched_sweep): `lane_width`
  /// realizations advance per pass over the edges of Gs, with contiguous
  /// SIMD-friendly lane rows. Lanes never interact, so results are
  /// bit-identical to the scalar sweep (`batched = false`, retained as the
  /// differential-testing oracle) for every lane width and block size —
  /// all three are pure performance knobs.
  bool batched = true;
  /// Realizations per sweep pass. Widths 4/8/16/32 hit the fixed-width
  /// register-blocked kernels (sim/batched_sweep); other widths fall back
  /// to a generic lane loop with identical results. Keep it moderate: the
  /// finish working set is task_count * lane_width doubles and should stay
  /// cache-resident. 32 measures fastest on AVX-512 cores (four
  /// accumulator registers per row pipeline the max/+ chain) while the
  /// working set stays L1-resident for paper-scale graphs.
  std::size_t lane_width = 32;
  /// Realizations per parallel work block (rounded up to whole sweeps of
  /// `lane_width`); 0 picks a block automatically. Larger blocks amortize
  /// scheduling, smaller blocks balance load.
  std::size_t block_size = 0;
};

/// Aggregate result of one robustness evaluation.
struct RobustnessReport {
  double expected_makespan = 0.0;       ///< M0
  double mean_realized_makespan = 0.0;  ///< E[M_i]
  double stddev_realized_makespan = 0.0;
  double max_realized_makespan = 0.0;
  /// Distribution quantiles of the realized makespan (always computed; the
  /// tail quantiles are what deadline-driven users actually provision for).
  double p50_realized_makespan = 0.0;
  double p95_realized_makespan = 0.0;
  double p99_realized_makespan = 0.0;
  double mean_tardiness = 0.0;  ///< E[δ]
  double miss_rate = 0.0;       ///< α
  double r1 = 0.0;              ///< 1 / E[δ]  (capped)
  double r2 = 0.0;              ///< 1 / α     (capped)
  std::size_t realizations = 0;
  /// Realized makespans, only when MonteCarloConfig::collect_samples.
  std::vector<double> samples;
};

/// Evaluate the robustness of `schedule` on `instance`.
RobustnessReport evaluate_robustness(const ProblemInstance& instance,
                                     const Schedule& schedule,
                                     const MonteCarloConfig& config);

}  // namespace rts
