#include "sim/dynamic.hpp"

#include <algorithm>
#include <queue>

#include "sched/heft.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "workload/uncertainty.hpp"

namespace rts {

DynamicRunResult simulate_dynamic_eft(const TaskGraph& graph, const Platform& platform,
                                      const Matrix<double>& expected,
                                      const Matrix<double>& realized,
                                      const CompletionHook& hook) {
  const std::size_t n = graph.task_count();
  const std::size_t m = platform.proc_count();
  RTS_REQUIRE(expected.rows() == n && expected.cols() == m,
              "expected matrix has wrong shape");
  RTS_REQUIRE(realized.rows() == n && realized.cols() == m,
              "realized matrix has wrong shape");
  graph.validate();

  // Dispatch priority: HEFT upward ranks on the planning costs.
  const auto rank = heft_upward_ranks(graph, platform, expected);

  const auto cmp = [&rank](TaskId a, TaskId b) {
    const double ra = rank[a.index()];
    const double rb = rank[b.index()];
    if (ra != rb) return ra < rb;  // max-heap on rank
    return a > b;
  };
  std::priority_queue<TaskId, std::vector<TaskId>, decltype(cmp)> ready(cmp);

  IdVector<TaskId, std::size_t> pending(n);
  for (const TaskId t : id_range<TaskId>(n)) {
    pending[t] = graph.in_degree(t);
    if (pending[t] == 0) ready.push(t);
  }

  std::vector<double> start_of(n, 0.0);
  std::vector<double> finish_of(n, 0.0);
  double makespan = 0.0;
  ScheduleBuilder builder(n, m);
  IdVector<ProcId, double> proc_avail(m, 0.0);
  IdVector<TaskId, ProcId> proc_of(n, kNoProc);
  std::size_t completed = 0;

  while (!ready.empty()) {
    const TaskId t = ready.top();
    ready.pop();

    // Earliest start of t on processor p given observed history.
    const auto earliest_start = [&](ProcId p) {
      double es = proc_avail[p];
      for (const EdgeRef& e : graph.predecessors(t)) {
        es = std::max(es, finish_of[e.task.index()] +
                              platform.comm_cost(e.data, proc_of[e.task], p));
      }
      return es;
    };

    // Decide with expected durations...
    ProcId best_p{0};
    double best_eft = earliest_start(best_p) + expected(t.index(), 0);
    for (ProcId p = 1; p.index() < m; ++p) {
      const double eft = earliest_start(p) + expected(t.index(), p.index());
      if (eft < best_eft) {
        best_eft = eft;
        best_p = p;
      }
    }
    // ...execute with the realized one.
    const double start = earliest_start(best_p);
    const double finish = start + realized(t.index(), best_p.index());
    start_of[t.index()] = start;
    finish_of[t.index()] = finish;
    makespan = std::max(makespan, finish);
    proc_avail[best_p] = finish;
    proc_of[t] = best_p;
    builder.append(best_p, t);
    ++completed;
    if (hook) {
      hook(CompletionEvent{t, best_p, start, finish, completed});
    }

    for (const EdgeRef& e : graph.successors(t)) {
      if (--pending[e.task] == 0) ready.push(e.task);
    }
  }
  RTS_REQUIRE(completed == n, "dispatcher stalled: task graph must be acyclic");
  return DynamicRunResult{std::move(builder).build(), makespan, std::move(start_of),
                          std::move(finish_of)};
}

RobustnessReport evaluate_dynamic_eft(const ProblemInstance& instance,
                                      const MonteCarloConfig& config) {
  RTS_REQUIRE(config.realizations > 0, "need at least one realization");
  instance.validate();
  const std::size_t n = instance.task_count();
  const std::size_t m = instance.proc_count();

  RobustnessReport report;
  report.realizations = config.realizations;
  // The dispatcher's plan: its own execution when nothing deviates.
  report.expected_makespan =
      simulate_dynamic_eft(instance.graph, instance.platform, instance.expected,
                           instance.expected)
          .makespan;
  const double m0 = report.expected_makespan;

  std::vector<double> samples(config.realizations);
  const Rng root(config.seed);
  const auto total = static_cast<std::int64_t>(config.realizations);
#ifdef RTS_HAVE_OPENMP
#pragma omp parallel default(none) shared(instance, n, m, total, root, samples)
#endif
  {
    Matrix<double> realized(n, m);
#ifdef RTS_HAVE_OPENMP
#pragma omp for schedule(static)
#endif
    for (std::int64_t i = 0; i < total; ++i) {
      Rng rng = root.substream(static_cast<std::uint64_t>(i));
      for (std::size_t t = 0; t < n; ++t) {
        for (std::size_t p = 0; p < m; ++p) {
          realized(t, p) =
              sample_realized_duration(rng, instance.bcet(t, p), instance.ul(t, p));
        }
      }
      samples[static_cast<std::size_t>(i)] =
          simulate_dynamic_eft(instance.graph, instance.platform, instance.expected,
                               realized)
              .makespan;
    }
  }

  RunningStats stats;
  RunningStats tardy;
  std::size_t misses = 0;
  for (const double mi : samples) {
    stats.add(mi);
    tardy.add(std::max(0.0, mi - m0) / m0);
    if (mi > m0) ++misses;
  }
  report.mean_realized_makespan = stats.mean();
  report.stddev_realized_makespan = stats.stddev();
  report.max_realized_makespan = stats.max();
  report.p50_realized_makespan = percentile(samples, 50.0);
  report.p95_realized_makespan = percentile(samples, 95.0);
  report.p99_realized_makespan = percentile(samples, 99.0);
  report.mean_tardiness = tardy.mean();
  report.miss_rate =
      static_cast<double>(misses) / static_cast<double>(config.realizations);
  report.r1 = report.mean_tardiness > 0.0
                  ? std::min(config.reciprocal_cap, 1.0 / report.mean_tardiness)
                  : config.reciprocal_cap;
  report.r2 = report.miss_rate > 0.0
                  ? std::min(config.reciprocal_cap, 1.0 / report.miss_rate)
                  : config.reciprocal_cap;
  if (config.collect_samples) report.samples = std::move(samples);
  return report;
}

}  // namespace rts
