#pragma once
// Realization engine: draws "real environment" executions of a schedule
// (paper Section 3.1: "we call it a realization of a schedule when the task
// graph is executed in the real resource environment according to the
// schedule"). The realized duration of task i on its assigned processor p is
// U(b_ip, (2*UL_ip - 1) * b_ip); transfer rates do not vary (Section 3.1).

#include <span>
#include <vector>

#include "sched/schedule.hpp"
#include "util/rng.hpp"
#include "workload/problem.hpp"

namespace rts {

/// Precompiled per-task (BCET, UL) pairs on the assigned processors of one
/// schedule, ready to draw realization after realization.
class RealizationSampler {
 public:
  RealizationSampler(const ProblemInstance& instance, const Schedule& schedule);

  [[nodiscard]] std::size_t task_count() const noexcept { return bcet_.size(); }

  /// Fill `durations` (size n) with one realization drawn from `rng`.
  void sample(Rng& rng, std::span<double> durations) const;

  /// Expected durations on the assigned processors (UL * BCET); the paper's
  /// schedulers plan with these, and M0 is the makespan they induce.
  [[nodiscard]] const std::vector<double>& expected_durations() const noexcept {
    return expected_;
  }

 private:
  std::vector<double> bcet_;
  std::vector<double> ul_;
  std::vector<double> expected_;
};

}  // namespace rts
