#pragma once
// Realization engine: draws "real environment" executions of a schedule
// (paper Section 3.1: "we call it a realization of a schedule when the task
// graph is executed in the real resource environment according to the
// schedule"). The realized duration of task i on its assigned processor p is
// U(b_ip, (2*UL_ip - 1) * b_ip); transfer rates do not vary (Section 3.1).

#include <span>
#include <vector>

#include "sched/schedule.hpp"
#include "util/rng.hpp"
#include "workload/problem.hpp"

namespace rts {

/// Precompiled per-task (BCET, UL) pairs on the assigned processors of one
/// schedule, ready to draw realization after realization.
class RealizationSampler {
 public:
  RealizationSampler(const ProblemInstance& instance, const Schedule& schedule);

  [[nodiscard]] std::size_t task_count() const noexcept { return bcet_.size(); }

  /// Fill `durations` (size n) with one realization drawn from `rng`.
  void sample(Rng& rng, std::span<double> durations) const;

  /// Same draw sequence, scattered into lane `lane` of a lane-major buffer
  /// (`durations[t * stride + lane]`, size n * stride) for the batched
  /// sweeps. Draw order per realization is identical to sample(), so a
  /// realization's durations do not depend on which lane it lands in.
  void sample_lane(Rng& rng, std::span<double> durations, std::size_t lane,
                   std::size_t stride) const;

  /// Fill `lanes` interleaved realizations at once: lane l draws from
  /// `root.substream(first_stream + l)` with exactly sample()'s draw
  /// sequence, into `durations[t * lanes + l]` (size >= n * lanes). For the
  /// lane widths the batched sweeps use (4/8/16/32) the per-lane
  /// xoshiro256** states are stepped in structure-of-arrays form, so the
  /// auto-vectorizer advances all lanes' RNGs in SIMD; every lane's draws
  /// are bit-identical to the scalar path by construction (same state
  /// expansion, same step, same uniform transform, per lane).
  void sample_lanes(const Rng& root, std::uint64_t first_stream,
                    std::span<double> durations, std::size_t lanes) const;

  /// Expected durations on the assigned processors (UL * BCET); the paper's
  /// schedulers plan with these, and M0 is the makespan they induce.
  [[nodiscard]] const std::vector<double>& expected_durations() const noexcept {
    return expected_;
  }

 private:
  std::vector<double> bcet_;
  std::vector<double> ul_;
  std::vector<double> expected_;
};

}  // namespace rts
