#include "sim/criticality.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "sched/timing.hpp"
#include "sim/batched_sweep.hpp"
#include "sim/realization.hpp"
#include "util/error.hpp"

namespace rts {

std::vector<bool> critical_tasks(const TaskGraph& graph, const Platform& platform,
                                 const Schedule& schedule,
                                 std::span<const double> durations,
                                 double float_tolerance) {
  const TimingEvaluator evaluator(graph, platform, schedule);
  const ScheduleTiming timing = evaluator.full_timing(durations);
  std::vector<bool> critical(graph.task_count(), false);
  const double tol = float_tolerance * timing.makespan;
  for (const TaskId t : id_range<TaskId>(graph.task_count())) {
    critical[t.index()] = timing.slack[t] <= tol;
  }
  return critical;
}

CriticalityReport analyze_criticality(const ProblemInstance& instance,
                                      const Schedule& schedule,
                                      const CriticalityConfig& config) {
  RTS_REQUIRE(config.realizations > 0, "need at least one realization");
  RTS_REQUIRE(config.safe_threshold >= 0.0 && config.safe_threshold <= 1.0,
              "safe threshold must lie in [0,1]");
  instance.validate();
  const std::size_t n = instance.task_count();

  const TimingEvaluator evaluator(instance.graph, instance.platform, schedule);
  const RealizationSampler sampler(instance, schedule);

  // Per-task counts filled in parallel over realizations, reduced serially
  // (deterministic for a fixed seed regardless of thread count).
  std::vector<std::uint32_t> counts(n, 0);
  std::vector<std::uint64_t> total_critical_per_real(config.realizations, 0);
  std::vector<std::uint8_t> critical_flags(n * config.realizations, 0);

  const Rng root(config.seed);

  if (config.batched) {
    // Lane-blocked forward+backward sweeps: slack for `lane_width`
    // realizations per pass over Gs. Lane slack values are bit-identical to
    // full_timing_into's, so the derived flags match the scalar path
    // exactly (same tol comparison against the same bits).
    const BatchedGsSweep sweep(evaluator);
    const std::size_t lane_width = std::max<std::size_t>(1, config.lane_width);
    const std::size_t total = config.realizations;
    const auto lane_blocks =
        static_cast<std::int64_t>((total + lane_width - 1) / lane_width);
#ifdef RTS_HAVE_OPENMP
#pragma omp parallel default(none) \
    shared(config, n, lane_width, total, lane_blocks, sampler, root, sweep, \
               critical_flags, total_critical_per_real)
#endif
    {
      std::vector<double> durations(n * lane_width);
      std::vector<double> start(n * lane_width);
      std::vector<double> finish(n * lane_width);
      std::vector<double> bottom(n * lane_width);
      std::vector<double> slack(n * lane_width);
      std::vector<double> makespans(lane_width);
#ifdef RTS_HAVE_OPENMP
#pragma omp for schedule(static)
#endif
      for (std::int64_t b = 0; b < lane_blocks; ++b) {
        const std::size_t i0 = static_cast<std::size_t>(b) * lane_width;
        const std::size_t lanes = std::min(lane_width, total - i0);
        sampler.sample_lanes(root, static_cast<std::uint64_t>(i0), durations,
                             lanes);
        sweep.forward_backward(std::span<const double>(durations).first(n * lanes),
                               lanes, start, finish, bottom, slack, makespans);
        for (std::size_t l = 0; l < lanes; ++l) {
          const double tol = config.float_tolerance * makespans[l];
          std::uint64_t count = 0;
          for (std::size_t t = 0; t < n; ++t) {
            const bool crit = slack[t * lanes + l] <= tol;
            critical_flags[(i0 + l) * n + t] = crit ? 1 : 0;
            count += crit ? 1 : 0;
          }
          total_critical_per_real[i0 + l] = count;
        }
      }
    }
  } else {
    const auto total = static_cast<std::int64_t>(config.realizations);
#ifdef RTS_HAVE_OPENMP
#pragma omp parallel default(none) \
    shared(config, n, total, sampler, root, evaluator, critical_flags, \
               total_critical_per_real)
#endif
    {
      // Per-thread scratch: the duration sample and the full-timing buffers
      // are reused across this thread's realizations (full_timing_into keeps
      // capacity), so the sweep performs no steady-state allocation.
      std::vector<double> durations(n);
      ScheduleTiming timing;
#ifdef RTS_HAVE_OPENMP
#pragma omp for schedule(static)
#endif
      for (std::int64_t i = 0; i < total; ++i) {
        Rng rng = root.substream(static_cast<std::uint64_t>(i));
        sampler.sample(rng, durations);
        // rts-lint: allow(no-scalar-mc-in-loop) — scalar oracle fallback.
        evaluator.full_timing_into(durations, timing);
        const double tol = config.float_tolerance * timing.makespan;
        std::uint64_t count = 0;
        for (const TaskId t : id_range<TaskId>(n)) {
          const bool crit = timing.slack[t] <= tol;
          critical_flags[static_cast<std::size_t>(i) * n + t.index()] = crit ? 1 : 0;
          count += crit ? 1 : 0;
        }
        total_critical_per_real[static_cast<std::size_t>(i)] = count;
      }
    }
  }
  for (std::size_t i = 0; i < config.realizations; ++i) {
    for (std::size_t t = 0; t < n; ++t) {
      counts[t] += critical_flags[i * n + t];
    }
  }

  CriticalityReport report;
  report.realizations = config.realizations;
  report.criticality_index.resize(n);
  double p_sum = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    report.criticality_index[t] =
        static_cast<double>(counts[t]) / static_cast<double>(config.realizations);
    p_sum += report.criticality_index[t];
    if (report.criticality_index[t] <= config.safe_threshold) ++report.safe_tasks;
  }
  std::uint64_t critical_total = 0;
  for (const std::uint64_t c : total_critical_per_real) critical_total += c;
  report.expected_critical_tasks =
      static_cast<double>(critical_total) / static_cast<double>(config.realizations);

  // Normalized entropy of q_i = p_i / sum(p). A schedule whose risk always
  // funnels through the same chain scores near 0.
  if (p_sum > 0.0 && n > 1) {
    double entropy = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      const double q = report.criticality_index[t] / p_sum;
      if (q > 0.0) entropy -= q * std::log(q);
    }
    report.normalized_entropy = entropy / std::log(static_cast<double>(n));
  }
  return report;
}

}  // namespace rts
