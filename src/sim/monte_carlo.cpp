#include "sim/monte_carlo.hpp"

#include <algorithm>

#ifdef RTS_HAVE_OPENMP
#include <omp.h>
#endif

#include "sched/timing.hpp"
#include "sim/batched_sweep.hpp"
#include "sim/realization.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace rts {

namespace {

// Scalar reference sweep over realizations [begin, end): one realization per
// pass over Gs. Retained as the differential-testing oracle for the batched
// sweep (tests/sim/test_mc_batched.cpp) and as the `batched = false`
// fallback. Thread scratch is caller-owned so parallel callers allocate
// nothing per realization.
void scalar_sweep_range(const TimingEvaluator& evaluator,
                        const RealizationSampler& sampler, const Rng& root,
                        std::size_t begin, std::size_t end,
                        std::vector<double>& durations,
                        std::vector<double>& scratch,
                        std::span<double> samples) {
  for (std::size_t i = begin; i < end; ++i) {
    Rng rng = root.substream(static_cast<std::uint64_t>(i));
    sampler.sample(rng, durations);
    // rts-lint: allow(no-scalar-mc-in-loop) — this IS the scalar oracle.
    samples[i] = evaluator.makespan_into(durations, scratch);
  }
}

// Batched sweep over realizations [begin, end): up to `lane_width` lanes per
// pass over Gs. Each realization keeps its own RNG substream and its lane
// combines exactly the scalar sweep's operands in the same order, so
// samples[] is bit-identical to scalar_sweep_range for any lane width.
void batched_sweep_range(const BatchedGsSweep& sweep,
                         const RealizationSampler& sampler, const Rng& root,
                         std::size_t begin, std::size_t end,
                         std::size_t lane_width, std::vector<double>& durations,
                         std::vector<double>& finish,
                         std::vector<double>& makespans,
                         std::span<double> samples) {
  const std::size_t n = sweep.task_count();
  for (std::size_t i = begin; i < end; i += lane_width) {
    const std::size_t lanes = std::min(lane_width, end - i);
    sampler.sample_lanes(root, static_cast<std::uint64_t>(i), durations, lanes);
    sweep.forward(std::span<const double>(durations).first(n * lanes), lanes,
                  finish, makespans);
    for (std::size_t l = 0; l < lanes; ++l) samples[i + l] = makespans[l];
  }
}

}  // namespace

RobustnessReport evaluate_robustness(const ProblemInstance& instance,
                                     const Schedule& schedule,
                                     const MonteCarloConfig& config) {
  RTS_REQUIRE(config.realizations > 0, "need at least one realization");
  const std::size_t n = instance.task_count();

  const TimingEvaluator evaluator(instance.graph, instance.platform, schedule);
  const RealizationSampler sampler(instance, schedule);

  RobustnessReport report;
  report.realizations = config.realizations;
  report.expected_makespan = evaluator.makespan(sampler.expected_durations());
  const double m0 = report.expected_makespan;
  RTS_ENSURE(m0 > 0.0, "expected makespan must be positive");

  // Realized makespans are computed in parallel into a dense array and then
  // reduced serially, so the aggregates are bit-identical for a fixed seed
  // regardless of thread count (each realization has its own RNG substream).
  // Work is split into blocks of whole lane groups; a block's samples land at
  // absolute realization indices, so the block size is bitwise-neutral too.
  std::vector<double> samples(config.realizations);
  const Rng root(config.seed);
  const std::size_t lane_width = std::max<std::size_t>(1, config.lane_width);
  const std::size_t block =
      config.block_size > 0
          ? ((config.block_size + lane_width - 1) / lane_width) * lane_width
          : std::max<std::size_t>(lane_width, 64);
  const std::size_t num_blocks = (config.realizations + block - 1) / block;
  const auto total_blocks = static_cast<std::int64_t>(num_blocks);
  const BatchedGsSweep sweep(evaluator);

#ifdef RTS_HAVE_OPENMP
  const int num_threads = config.threads > 0
                              ? static_cast<int>(config.threads)
                              : omp_get_max_threads();
#pragma omp parallel num_threads(num_threads) default(none) \
    shared(config, n, lane_width, block, total_blocks, sweep, sampler, root, \
               evaluator, samples)
#endif
  {
    std::vector<double> durations(config.batched ? n * lane_width : n);
    std::vector<double> finish(n * lane_width);
    std::vector<double> makespans(lane_width);
    std::vector<double> scratch(config.batched ? 0 : n);
#ifdef RTS_HAVE_OPENMP
#pragma omp for schedule(static)
#endif
    for (std::int64_t b = 0; b < total_blocks; ++b) {
      const std::size_t begin = static_cast<std::size_t>(b) * block;
      const std::size_t end = std::min(config.realizations, begin + block);
      if (config.batched) {
        batched_sweep_range(sweep, sampler, root, begin, end, lane_width,
                            durations, finish, makespans, samples);
      } else {
        scalar_sweep_range(evaluator, sampler, root, begin, end, durations,
                           scratch, samples);
      }
    }
  }

  RunningStats makespan_stats;
  RunningStats tardiness_stats;
  std::size_t misses = 0;
  for (const double mi : samples) {
    makespan_stats.add(mi);
    tardiness_stats.add(std::max(0.0, mi - m0) / m0);
    if (mi > m0) ++misses;
  }

  // One sorted copy serves all three percentiles (percentile() itself sorts
  // per call, which would triple the serial tail of a 100k-sample run).
  std::vector<double> sorted(samples);
  std::sort(sorted.begin(), sorted.end());

  report.mean_realized_makespan = makespan_stats.mean();
  report.stddev_realized_makespan = makespan_stats.stddev();
  report.max_realized_makespan = makespan_stats.max();
  report.p50_realized_makespan = percentile_sorted(sorted, 50.0);
  report.p95_realized_makespan = percentile_sorted(sorted, 95.0);
  report.p99_realized_makespan = percentile_sorted(sorted, 99.0);
  report.mean_tardiness = tardiness_stats.mean();
  report.miss_rate =
      static_cast<double>(misses) / static_cast<double>(config.realizations);
  report.r1 = report.mean_tardiness > 0.0
                  ? std::min(config.reciprocal_cap, 1.0 / report.mean_tardiness)
                  : config.reciprocal_cap;
  report.r2 = report.miss_rate > 0.0
                  ? std::min(config.reciprocal_cap, 1.0 / report.miss_rate)
                  : config.reciprocal_cap;
  if (config.collect_samples) report.samples = std::move(samples);
  return report;
}

}  // namespace rts
