#include "sim/monte_carlo.hpp"

#include <algorithm>

#ifdef RTS_HAVE_OPENMP
#include <omp.h>
#endif

#include "sched/timing.hpp"
#include "sim/realization.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace rts {

RobustnessReport evaluate_robustness(const ProblemInstance& instance,
                                     const Schedule& schedule,
                                     const MonteCarloConfig& config) {
  RTS_REQUIRE(config.realizations > 0, "need at least one realization");
  const std::size_t n = instance.task_count();

  const TimingEvaluator evaluator(instance.graph, instance.platform, schedule);
  const RealizationSampler sampler(instance, schedule);

  RobustnessReport report;
  report.realizations = config.realizations;
  report.expected_makespan = evaluator.makespan(sampler.expected_durations());
  const double m0 = report.expected_makespan;
  RTS_ENSURE(m0 > 0.0, "expected makespan must be positive");

  // Realized makespans are computed in parallel into a dense array and then
  // reduced serially, so the aggregates are bit-identical for a fixed seed
  // regardless of thread count (each realization has its own RNG substream).
  std::vector<double> samples(config.realizations);
  const Rng root(config.seed);
  const auto total = static_cast<std::int64_t>(config.realizations);

#ifdef RTS_HAVE_OPENMP
  const int num_threads = config.threads > 0
                              ? static_cast<int>(config.threads)
                              : omp_get_max_threads();
#pragma omp parallel num_threads(num_threads)
  {
    std::vector<double> durations(n);
    std::vector<double> scratch(n);
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < total; ++i) {
      Rng rng = root.substream(static_cast<std::uint64_t>(i));
      sampler.sample(rng, durations);
      samples[static_cast<std::size_t>(i)] = evaluator.makespan_into(durations, scratch);
    }
  }
#else
  {
    std::vector<double> durations(n);
    std::vector<double> scratch(n);
    for (std::int64_t i = 0; i < total; ++i) {
      Rng rng = root.substream(static_cast<std::uint64_t>(i));
      sampler.sample(rng, durations);
      samples[static_cast<std::size_t>(i)] = evaluator.makespan_into(durations, scratch);
    }
  }
#endif

  RunningStats makespan_stats;
  RunningStats tardiness_stats;
  std::size_t misses = 0;
  for (const double mi : samples) {
    makespan_stats.add(mi);
    tardiness_stats.add(std::max(0.0, mi - m0) / m0);
    if (mi > m0) ++misses;
  }

  report.mean_realized_makespan = makespan_stats.mean();
  report.stddev_realized_makespan = makespan_stats.stddev();
  report.max_realized_makespan = makespan_stats.max();
  report.p50_realized_makespan = percentile(samples, 50.0);
  report.p95_realized_makespan = percentile(samples, 95.0);
  report.p99_realized_makespan = percentile(samples, 99.0);
  report.mean_tardiness = tardiness_stats.mean();
  report.miss_rate =
      static_cast<double>(misses) / static_cast<double>(config.realizations);
  report.r1 = report.mean_tardiness > 0.0
                  ? std::min(config.reciprocal_cap, 1.0 / report.mean_tardiness)
                  : config.reciprocal_cap;
  report.r2 = report.miss_rate > 0.0
                  ? std::min(config.reciprocal_cap, 1.0 / report.miss_rate)
                  : config.reciprocal_cap;
  if (config.collect_samples) report.samples = std::move(samples);
  return report;
}

}  // namespace rts
