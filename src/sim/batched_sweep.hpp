#pragma once
// Batched (lane-blocked) Monte-Carlo sweeps over a compiled disjunctive
// graph Gs.
//
// The scalar Monte-Carlo hot path evaluates one realization per pass over
// the compiled Gs: a pointer-chasing walk whose per-edge work is a single
// max/+ — the traversal overhead (topo indirection, offset loads, loop
// control) dominates the arithmetic. These kernels restructure the compiled
// graph into structure-of-arrays form — one contiguous edge array in
// topological order, predecessor slots and costs in flat parallel arrays,
// no per-node indirection on the hot path — and sweep N realization *lanes*
// per pass over the edges: the inner loop over lanes reads/writes
// contiguous rows (`value_of(task t, lane l) = buf[t * lanes + l]`), so the
// compiler auto-vectorizes it and the edge metadata is fetched once per
// edge instead of once per (edge, realization).
//
// Determinism contract (the reason the scalar sweep stays around as the
// differential-testing oracle, see tests/sim/test_mc_batched.cpp): lanes
// never interact — lane l combines exactly the operands the scalar sweep
// combines for realization l, in the same order (edges in CSR order, nodes
// in topo order, the same max/+ reduction tree). Results are therefore
// bit-identical to the scalar sweep for every lane width, block size and
// thread count. src/CMakeLists.txt pins -ffp-contract=off across the
// library so no build flavor can fuse a*b+c differently and break the
// bitwise guarantee.
//
// Two kernels:
//   * BatchedGsSweep      — complete static schedules, compiled from a
//                           TimingEvaluator's Gs (forward sweep for
//                           makespans/finish times, forward+backward for
//                           per-task slack — the criticality input);
//   * BatchedPartialSweep — interrupted executions (sched/partial_schedule):
//                           frozen history pinned, live tasks floored at the
//                           decision instant, mirroring partial_timing()
//                           bit for bit. Feeds the drop-policy
//                           completion-probability estimator.

#include <cstdint>
#include <span>
#include <vector>

#include "sched/partial_schedule.hpp"
#include "sched/timing.hpp"

namespace rts {

/// Structure-of-arrays compile of one TimingEvaluator's Gs, ready to sweep
/// many realization lanes per pass. Snapshots the evaluator's compiled
/// state; rebuild()ing the evaluator afterwards does not affect this kernel.
class BatchedGsSweep {
 public:
  /// Compile from an evaluator holding a compiled schedule. Edge order and
  /// topological order are taken verbatim from the evaluator, so lane
  /// results match its scalar sweeps bit for bit.
  explicit BatchedGsSweep(const TimingEvaluator& evaluator);

  [[nodiscard]] std::size_t task_count() const noexcept { return n_; }

  /// Forward sweep of `lanes` realizations in one pass over the edges.
  ///
  /// Lane-major layout throughout: entry (task t, lane l) lives at
  /// `buf[t * lanes + l]`. `durations` holds the realized duration of every
  /// task per lane; on return `finish[t * lanes + l]` is task t's finish
  /// time in lane l and `makespans[l]` the lane's makespan. Buffers must
  /// hold n * lanes (finish, durations) and lanes (makespans) values.
  void forward(std::span<const double> durations, std::size_t lanes,
               std::span<double> finish, std::span<double> makespans) const;

  /// Forward + backward sweep: additionally computes per-task slack
  /// (Definition 3.3, sigma = M - Bl - Tl) per lane — the criticality
  /// analysis input. `start` and `bottom` are scratch of n * lanes values;
  /// `slack` receives the per-(task, lane) slack.
  void forward_backward(std::span<const double> durations, std::size_t lanes,
                        std::span<double> start, std::span<double> finish,
                        std::span<double> bottom, std::span<double> slack,
                        std::span<double> makespans) const;

 private:
  std::size_t n_ = 0;
  // Edges of Gs in topological order of their target node: node_off_[s] ..
  // node_off_[s+1] are the predecessor edges of the task in topo slot s.
  // Offsets are 64-bit (EdgeId domain): edge totals pass 2^31 long before
  // task counts do at the ROADMAP's million-task scale.
  std::vector<std::int64_t> node_off_;
  std::vector<std::uint32_t> edge_pred_;  ///< predecessor task id per edge
  std::vector<double> edge_cost_;         ///< precompiled comm cost per edge
  std::vector<std::uint32_t> topo_;       ///< task id per topo slot
};

/// Structure-of-arrays compile of a partial schedule's timing recurrence
/// (partial_timing in sched/partial_schedule.hpp): frozen tasks are pinned
/// at their realized history, live tasks start no earlier than the decision
/// instant, dropped placeholders run with whatever (zero) durations the
/// caller supplies. Edge enumeration order matches partial_timing — graph
/// predecessors first, then the processor predecessor — so lane finishes
/// are bit-identical to the scalar recurrence.
class BatchedPartialSweep {
 public:
  BatchedPartialSweep(const TaskGraph& graph, const Platform& platform,
                      const PartialSchedule& partial);

  [[nodiscard]] std::size_t task_count() const noexcept { return n_; }

  /// Forward sweep of `lanes` realizations; `finish[t * lanes + l]` receives
  /// task t's finish in lane l (frozen tasks: their pinned history in every
  /// lane). Durations of frozen tasks are ignored.
  void forward(std::span<const double> durations, std::size_t lanes,
               std::span<double> finish) const;

 private:
  std::size_t n_ = 0;
  double floor_ = 0.0;  ///< max(decision_time, 0): earliest live start
  std::vector<std::int64_t> node_off_;  ///< 64-bit edge offsets (EdgeId domain)
  std::vector<std::uint32_t> edge_pred_;
  std::vector<double> edge_cost_;
  std::vector<std::uint32_t> topo_;
  std::vector<std::uint8_t> pinned_;      ///< per topo slot: frozen task?
  std::vector<double> pinned_finish_;     ///< per topo slot (0 when live)
};

}  // namespace rts
