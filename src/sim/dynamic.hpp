#pragma once
// Online (dynamic) scheduling baseline — the alternative the paper's
// introduction contrasts static robust scheduling against: "dynamic
// scheduling algorithm assigns each ready task according to the current
// status of the resource environment".
//
// simulate_dynamic_eft runs an online list scheduler: tasks are dispatched
// when ready (all predecessors completed), highest upward rank first; the
// dispatcher picks the processor minimizing the *expected* finish time given
// the actually-observed completion times so far, then the task executes for
// its *realized* duration. No insertion (a dispatcher cannot reserve gaps in
// the future), so placements are append-only.
//
// Model notes (documented assumptions):
//  * the dispatcher knows the expected duration matrix (like every scheduler
//    here) and learns realized durations only at task completion;
//  * processor availability at decision time uses the realized finish time
//    of the task currently occupying it — a mildly clairvoyant dispatcher,
//    making this an upper bound on what runtime EFT can achieve.
//
// The resulting start times satisfy the ASAP property of Claim 3.2 for the
// produced disjunctive order, so the reported makespan equals the
// TimingEvaluator's evaluation of the produced schedule under the realized
// durations (cross-checked by tests).

#include <functional>

#include "sched/schedule.hpp"
#include "sim/monte_carlo.hpp"
#include "workload/problem.hpp"

namespace rts {

/// Result of one dynamic execution.
struct DynamicRunResult {
  Schedule schedule;    ///< placements the dispatcher ended up with
  double makespan = 0.0;
  std::vector<double> start;
  std::vector<double> finish;
};

/// One task completion as observed by the dispatcher. `completed` counts
/// completions so far including this one (1-based), so the last event of a
/// run carries completed == task_count.
struct CompletionEvent {
  TaskId task = kNoTask;
  ProcId proc = kNoProc;
  double start = 0.0;
  double finish = 0.0;
  std::size_t completed = 0;
};

/// Observer invoked by simulate_dynamic_eft exactly once per task, in
/// dispatch order (the order placements are decided, which is NOT generally
/// chronological in finish time). Online controllers (src/resched) subscribe
/// here to watch execution unfold.
using CompletionHook = std::function<void(const CompletionEvent&)>;

/// Execute the online EFT dispatcher with planning costs `expected` and
/// realized per-(task, processor) durations `realized` (both n x m). `hook`,
/// when non-null, observes every completion exactly once.
DynamicRunResult simulate_dynamic_eft(const TaskGraph& graph, const Platform& platform,
                                      const Matrix<double>& expected,
                                      const Matrix<double>& realized,
                                      const CompletionHook& hook = nullptr);

/// Monte-Carlo evaluation of the dynamic dispatcher on `instance`: per
/// realization the full n x m realized-duration matrix is drawn and the
/// dispatcher re-run. `expected_makespan` in the returned report is the
/// dispatcher's makespan when realized == expected (its "plan"), so
/// tardiness/miss-rate compare like-for-like with the static schedulers.
RobustnessReport evaluate_dynamic_eft(const ProblemInstance& instance,
                                      const MonteCarloConfig& config);

}  // namespace rts
