#pragma once
// Hybrid execution policy: run a *static* schedule (e.g. the robust GA's)
// and fall back to *online EFT re-dispatch* for the not-yet-started tasks as
// soon as the observed slip crosses a threshold. This composes the paper's
// static robust scheduling with the introduction's dynamic alternative: the
// robust plan absorbs small disturbances for free (slack), and rescheduling
// only kicks in when the plan is genuinely broken.
//
// Trigger model: let plan_finish(t) be the static plan's finish times under
// the expected durations, and M0 its makespan. The first completed task
// whose realized finish exceeds plan_finish(t) + threshold * M0 trips the
// switch at time T* (its realized finish). Tasks that had already started by
// T* under the static execution keep their static placement and times;
// every other task is re-dispatched by the online EFT policy from the
// frozen state. threshold = +inf degenerates to pure static execution,
// threshold = 0 (with any slip) approaches pure dynamic dispatch.

#include "sched/schedule.hpp"
#include "sim/monte_carlo.hpp"
#include "workload/problem.hpp"

namespace rts {

/// One hybrid execution.
struct HybridRunResult {
  Schedule schedule;        ///< final placements (static + re-dispatched)
  double makespan = 0.0;
  bool rescheduled = false; ///< whether the trigger fired
  double trigger_time = 0.0;///< T* (0 when not rescheduled)
  std::size_t redispatched_tasks = 0;
};

/// Execute `plan` under `realized` durations with the re-dispatch trigger.
/// `expected` is the planning matrix (n x m); `threshold` is the slip
/// fraction of the plan makespan that trips rescheduling.
HybridRunResult simulate_hybrid(const TaskGraph& graph, const Platform& platform,
                                const Schedule& plan, const Matrix<double>& expected,
                                const Matrix<double>& realized, double threshold);

/// Monte-Carlo evaluation of the hybrid policy around a static plan.
/// `expected_makespan` in the report is the static plan's M0, so tardiness
/// and miss rate are comparable with evaluate_robustness on the same plan.
/// `rescheduling_rate` (fraction of realizations that tripped the trigger)
/// is returned through the out-parameter when non-null.
RobustnessReport evaluate_hybrid(const ProblemInstance& instance, const Schedule& plan,
                                 double threshold, const MonteCarloConfig& config,
                                 double* rescheduling_rate = nullptr);

}  // namespace rts
