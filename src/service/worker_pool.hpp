#pragma once
// Thread pool that drains a JobQueue.
//
// Each worker loops `queue.pop()` and hands every job to a caller-supplied
// handler. The pool owns only the threads; queueing policy lives in JobQueue
// and solve/cache logic lives in SchedulerService, so each piece is testable
// on its own. Shutdown protocol: close the queue, then join() — workers
// finish the drained jobs and exit when pop() returns end-of-stream.

#include <functional>
#include <thread>
#include <vector>

#include "service/job_queue.hpp"
#include "util/thread_annotations.hpp"

namespace rts {

class WorkerPool {
 public:
  /// Invoked with the job and the index (< worker_count) of the worker
  /// thread running it. The index is stable for the thread's lifetime, so
  /// handlers can key per-worker scratch state (e.g. the scheduler service's
  /// evaluation-workspace pools) without locking.
  using JobHandler = std::function<void(QueuedJob&&, std::size_t worker_index)>;

  /// Spawn `worker_count` threads (>= 1) draining `queue`. The handler is
  /// invoked concurrently from multiple threads and must be thread-safe; it
  /// must not throw (job-level failures are reported through JobResult).
  WorkerPool(std::size_t worker_count, JobQueue& queue, JobHandler handler);

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Joins (closing the queue first) if still running.
  ~WorkerPool();

  /// Close the queue and wait for every worker to drain and exit. Idempotent
  /// and safe to call from multiple threads concurrently: every caller
  /// returns only after all workers have exited.
  void join() RTS_EXCLUDES(join_mutex_);

  [[nodiscard]] std::size_t worker_count() const noexcept { return worker_count_; }

 private:
  JobQueue& queue_;
  JobHandler handler_;
  std::size_t worker_count_ = 0;  ///< immutable after construction
  Mutex join_mutex_;              ///< serializes join() callers
  std::vector<std::thread> threads_ RTS_GUARDED_BY(join_mutex_);
};

}  // namespace rts
