#pragma once
// Operational telemetry of the scheduling service: counters, queue/in-flight
// gauges, solve-latency quantiles and the cache hit rate, exposed as a
// consistent point-in-time snapshot (SchedulerService::stats()).

#include <cstdint>
#include <string>
#include <vector>

#include "service/result_cache.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace rts {

/// Point-in-time snapshot of service health.
///
/// Accounting closure: every submit() attempt ends in exactly one of four
/// dispositions, so once the service has drained (queue_depth == 0 and
/// in_flight == 0) the counters satisfy
///
///   submitted == rejected + hits + solved + coalesced
///   completed + failed == hits + solved + coalesced
///
/// `quota_rejected` sits outside the identity on purpose: it counts requests
/// a transport front-end refused *before* calling submit() (per-client
/// in-flight quota — see net/serve_server.hpp), so the service never saw
/// them. The service itself always reports it as 0.
struct ServiceStats {
  std::uint64_t submitted = 0;       ///< submit() attempts (accepted + rejected)
  std::uint64_t rejected = 0;        ///< refused at admission (queue full/closed)
  std::uint64_t quota_rejected = 0;  ///< refused upstream by a per-client quota
  std::uint64_t completed = 0;       ///< jobs finished with status kOk
  std::uint64_t failed = 0;          ///< jobs finished with status kFailed
  std::uint64_t hits = 0;            ///< served from the result cache fast path
  std::uint64_t solved = 0;          ///< coalescing leaders that ran the solver
  std::uint64_t coalesced = 0;       ///< followers resolved from a leader's solve
  std::size_t queue_depth = 0;       ///< jobs waiting in the queue right now
  std::size_t in_flight = 0;         ///< jobs currently being solved
  std::size_t workers = 0;           ///< worker-thread count
  double p50_latency_ms = 0.0;   ///< solve-latency quantiles over completed
  double p95_latency_ms = 0.0;   ///<   jobs (cache hits included — that is
  double max_latency_ms = 0.0;   ///<   the latency users observe)
  CacheStats cache;              ///< hit/miss/eviction counters + hit_rate()
};

/// Serialize a snapshot as a single JSON object with a fixed key order and
/// max round-trip float precision. The output is a pure function of the
/// snapshot's fields — byte-identical for equal snapshots across runs,
/// thread counts and platforms — so it is safe to diff, digest, or assert
/// on in tests. Latency quantiles are wall-clock measurements and therefore
/// the only fields expected to vary between otherwise-identical runs.
[[nodiscard]] std::string service_stats_to_json(const ServiceStats& stats);

/// Thread-safe accumulator of completed-job latencies; snapshots compute the
/// p50/p95/max quantiles on demand.
///
/// Memory is bounded: after `capacity` samples the recorder switches to
/// reservoir sampling (Vitter's Algorithm R), so a long-lived service holds
/// at most `capacity` doubles no matter how many jobs it completes. The
/// quantiles therefore become *estimates* once the reservoir is full —
/// uniformly sampled, so p50/p95 stay unbiased with error shrinking as
/// 1/sqrt(capacity) — while `max` is tracked exactly on the side. The
/// replacement stream is driven by a fixed-seed rts::Rng: the same latency
/// sequence yields the same snapshot on every run (see docs/service.md).
class LatencyRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit LatencyRecorder(std::size_t capacity = kDefaultCapacity);

  void record(double latency_ms) RTS_EXCLUDES(mutex_);

  struct Quantiles {
    double p50 = 0.0;
    double p95 = 0.0;
    double max = 0.0;
  };
  [[nodiscard]] Quantiles snapshot() const RTS_EXCLUDES(mutex_);

  /// Total samples ever recorded (not the reservoir occupancy).
  [[nodiscard]] std::uint64_t count() const RTS_EXCLUDES(mutex_);

 private:
  std::size_t capacity_;
  mutable Mutex mutex_;
  std::vector<double> samples_ RTS_GUARDED_BY(mutex_);  ///< the reservoir
  std::uint64_t count_ RTS_GUARDED_BY(mutex_) = 0;
  double max_ RTS_GUARDED_BY(mutex_) = 0.0;  ///< exact running maximum
  Rng rng_ RTS_GUARDED_BY(mutex_);
};

}  // namespace rts
