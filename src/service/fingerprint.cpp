#include "service/fingerprint.hpp"

namespace rts {

namespace {

void hash_matrix(Hasher& h, const Matrix<double>& m) {
  h.update(static_cast<std::uint64_t>(m.rows()));
  h.update(static_cast<std::uint64_t>(m.cols()));
  const double* data = m.data();
  for (std::size_t i = 0, n = m.rows() * m.cols(); i < n; ++i) {
    h.update(data[i]);
  }
}

void hash_graph(Hasher& h, const TaskGraph& graph) {
  h.update(static_cast<std::uint64_t>(graph.task_count()));
  h.update(static_cast<std::uint64_t>(graph.edge_count()));
  // Successor lists are iterated per task in insertion order; two graphs with
  // the same edge set inserted in different orders hash differently, which is
  // acceptable for a cache (a false miss costs a solve, never correctness).
  for (const TaskId t : id_range<TaskId>(graph.task_count())) {
    const auto succs = graph.successors(t);
    h.update(static_cast<std::uint64_t>(succs.size()));
    for (const EdgeRef& e : succs) {
      // Hash the raw 32-bit id value — the byte stream (and with it every
      // cached digest) must not change across the strong-id migration.
      h.update(e.task.value());
      h.update(e.data);
    }
  }
}

void hash_platform(Hasher& h, const Platform& platform) {
  const std::size_t m = platform.proc_count();
  h.update(static_cast<std::uint64_t>(m));
  for (std::size_t from = 0; from < m; ++from) {
    for (std::size_t to = 0; to < m; ++to) {
      if (from == to) continue;  // diagonal reads as +inf by convention
      h.update(platform.transfer_rate(static_cast<ProcId>(from),
                                      static_cast<ProcId>(to)));
    }
  }
}

}  // namespace

Digest problem_digest(const ProblemInstance& instance) {
  Hasher h;
  h.update(std::string_view("rts-problem"));
  hash_graph(h, instance.graph);
  hash_platform(h, instance.platform);
  hash_matrix(h, instance.bcet);
  hash_matrix(h, instance.ul);
  return h.digest();
}

Digest job_digest(const ProblemInstance& instance,
                  const RobustSchedulerConfig& config) {
  const Digest problem = problem_digest(instance);
  Hasher h;
  h.update(std::string_view("rts-job"));
  h.update(problem.hi);
  h.update(problem.lo);
  const GaConfig& ga = config.ga;
  h.update(static_cast<std::uint64_t>(ga.population_size));
  h.update(ga.crossover_prob);
  h.update(ga.mutation_prob);
  h.update(static_cast<std::uint64_t>(ga.max_iterations));
  h.update(static_cast<std::uint64_t>(ga.stagnation_window));
  h.update(ga.seed);
  h.update(static_cast<std::int32_t>(ga.objective));
  h.update(ga.epsilon);
  h.update(static_cast<std::uint64_t>(ga.seed_with_heft ? 1 : 0));
  h.update(static_cast<std::uint64_t>(ga.elitism ? 1 : 0));
  h.update(static_cast<std::uint64_t>(ga.history_stride));
  h.update(ga.effective_slack_kappa);
  const MonteCarloConfig& mc = config.mc;
  h.update(static_cast<std::uint64_t>(mc.realizations));
  h.update(mc.seed);
  h.update(mc.reciprocal_cap);
  h.update(static_cast<std::uint64_t>(config.stochastic_objective ? 1 : 0));
  return h.digest();
}

}  // namespace rts
