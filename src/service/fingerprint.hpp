#pragma once
// Content fingerprints of problem instances and jobs.
//
// The cache key must change whenever anything that can change the solver's
// output changes: the task graph (edges + data sizes), the BCET matrix, the
// UL matrix, the platform transfer-rate matrix TR, and every solver option
// (ε, GA hyper-parameters, seeds, Monte-Carlo knobs). Task names are
// deliberately excluded — they are presentation metadata and do not influence
// scheduling.

#include "service/job.hpp"
#include "util/digest.hpp"
#include "workload/problem.hpp"

namespace rts {

/// Digest of the problem instance alone (graph + BCET + UL + TR).
Digest problem_digest(const ProblemInstance& instance);

/// Digest of a full job: problem_digest ⊕ every RobustSchedulerConfig field.
/// Two jobs with equal job_digest produce identical SolveSummary payloads.
Digest job_digest(const ProblemInstance& instance,
                  const RobustSchedulerConfig& config);

}  // namespace rts
