#pragma once
// Umbrella header of the scheduling service layer (src/service/): job types,
// bounded priority queue, worker pool, LRU result cache and the
// SchedulerService facade. See docs/service.md for the architecture.

#include "service/fingerprint.hpp"         // IWYU pragma: export
#include "service/job.hpp"                 // IWYU pragma: export
#include "service/job_queue.hpp"           // IWYU pragma: export
#include "service/result_cache.hpp"        // IWYU pragma: export
#include "service/scheduler_service.hpp"   // IWYU pragma: export
#include "service/service_stats.hpp"       // IWYU pragma: export
#include "service/worker_pool.hpp"         // IWYU pragma: export
