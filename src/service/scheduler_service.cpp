#include "service/scheduler_service.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "check/validator.hpp"
#include "service/fingerprint.hpp"
#include "util/error.hpp"

namespace rts {

namespace {

SolveSummary summarize(const RobustScheduleOutcome& outcome) {
  SolveSummary s;
  s.heft_makespan = outcome.heft_makespan;
  s.makespan = outcome.eval.makespan;
  s.avg_slack = outcome.eval.avg_slack;
  s.mean_tardiness = outcome.report.mean_tardiness;
  s.miss_rate = outcome.report.miss_rate;
  s.r1 = outcome.report.r1;
  s.r2 = outcome.report.r2;
  s.heft_r1 = outcome.heft_report.r1;
  s.heft_r2 = outcome.heft_report.r2;
  s.ga_iterations = outcome.ga_iterations;
  return s;
}

}  // namespace

SchedulerService::SchedulerService(const SchedulerServiceConfig& config)
    : config_(config),
      queue_(config.queue_capacity),
      cache_(config.cache_capacity) {
  std::size_t workers = config.workers;
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  worker_scratch_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    worker_scratch_.push_back(std::make_unique<EvalWorkspacePool>());
  }
  pool_ = std::make_unique<WorkerPool>(workers, queue_,
                                       [this](QueuedJob&& job, std::size_t widx) {
                                         handle_job(std::move(job), widx);
                                       });
}

SchedulerService::~SchedulerService() { shutdown(); }

void SchedulerService::shutdown() { pool_->join(); }

std::size_t SchedulerService::worker_count() const noexcept {
  return pool_->worker_count();
}

PushOutcome SchedulerService::admit(JobRequest&& request, Completion&& completion,
                                    bool blocking,
                                    std::future<JobResult>* future_out) {
  RTS_REQUIRE(request.problem != nullptr, "job request needs a problem instance");
  const Digest key = job_digest(*request.problem, request.config);

  // The completion must be registered before the job is queued — a worker
  // may pop it immediately — and deregistered again if admission rejects it.
  std::uint64_t job_id = 0;
  {
    const LockGuard lock(mutex_);
    ++submitted_;  // every attempt counts; rejection is a disposition of it
    job_id = next_job_id_++;
    auto [it, inserted] = completions_.try_emplace(job_id, std::move(completion));
    RTS_ENSURE(inserted, "duplicate job id");
    if (future_out != nullptr) *future_out = it->second.promise.get_future();
  }

  QueuedJob job{job_id, std::move(request), key, 0};
  const PushOutcome outcome = blocking ? queue_.push_wait(std::move(job))
                                       : queue_.try_push(std::move(job));
  if (outcome != PushOutcome::kAccepted) {
    const LockGuard lock(mutex_);
    completions_.erase(job_id);
    ++rejected_;
  }
  return outcome;
}

std::optional<std::future<JobResult>> SchedulerService::submit(JobRequest request) {
  std::future<JobResult> future;
  const PushOutcome outcome =
      admit(std::move(request), Completion{}, config_.block_when_full, &future);
  if (outcome != PushOutcome::kAccepted) return std::nullopt;
  return future;
}

SchedulerService::SubmitOutcome SchedulerService::submit_async(
    JobRequest request, std::function<void(JobResult&&)> on_done) {
  RTS_REQUIRE(static_cast<bool>(on_done), "submit_async needs a completion callback");
  Completion completion;
  completion.callback = std::move(on_done);
  const PushOutcome outcome = admit(std::move(request), std::move(completion),
                                    /*blocking=*/false, nullptr);
  switch (outcome) {
    case PushOutcome::kAccepted: return SubmitOutcome::kAccepted;
    case PushOutcome::kRejectedFull: return SubmitOutcome::kRejectedFull;
    case PushOutcome::kRejectedClosed: return SubmitOutcome::kRejectedClosed;
  }
  RTS_ENSURE(false, "unreachable push outcome");
}

void SchedulerService::resolve(Completion& completion, JobResult&& result) {
  latency_.record(result.latency_ms);
  {
    const LockGuard lock(mutex_);
    if (result.status == JobStatus::kOk) {
      ++completed_;
    } else {
      ++failed_;
    }
  }
  if (completion.callback) {
    completion.callback(std::move(result));
  } else {
    completion.promise.set_value(std::move(result));
  }
}

void SchedulerService::handle_job(QueuedJob&& job, std::size_t worker_index) {
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed_ms = [start] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  JobResult result;
  result.job_id = job.job_id;
  result.key = job.key;

  // Triage under one mutex_ hold, entered in pop order. Two invariants:
  //
  // 1. Coalescing atomicity: a digest is *either* in-flight *or* (on
  //    success) in the cache, never in a gap between the two — the leader
  //    publishes its result and retires the in-flight entry under the same
  //    lock below. Checking the cache and the in-flight table in two
  //    separate critical sections (as an earlier revision did) leaves a
  //    window where a duplicate misses the cache, then finds the leader
  //    already gone, and re-solves — reporting a second cache_hit=false for
  //    the digest. tests/service/test_stress.cpp pins this down.
  //
  // 2. Deterministic leader election: triage admits jobs in QueuedJob::
  //    pop_seq order (this turnstile). Without it, two workers could pop
  //    duplicates in queue order but reach this lock in the *opposite*
  //    order, electing the later-popped job as the solving leader — a race
  //    that intermittently flipped cache_hit between otherwise identical
  //    runs (seen as a flake in SchedulerService.HundredJobsOnFourWorkers-
  //    MatchSingleThreadedReference) and broke rts_serve's byte-identical
  //    output across --threads. The wait is short: every popped job reaches
  //    triage without blocking on anything else first, so the turnstile
  //    serializes only the map/cache bookkeeping, never a solve.
  std::optional<SolveSummary> cached;
  Completion completion;
  {
    UniqueLock lock(mutex_);
    triage_turn_.wait(lock, [this, &job] {
      mutex_.assert_held();
      return triage_next_ == job.pop_seq;
    });
    auto node = completions_.extract(job.job_id);
    RTS_ENSURE(!node.empty(), "queued job has no registered completion");
    completion = std::move(node.mapped());

    const auto release_turnstile = [this] {
      mutex_.assert_held();
      ++triage_next_;
      triage_turn_.notify_all();
    };
    if (const auto it = inflight_.find(job.key); it != inflight_.end()) {
      // Coalescing: an identical request is being solved right now on
      // another worker. Park this job's completion with the leader and
      // return — the worker is free for the next job, and the leader
      // resolves us on completion.
      it->second.followers.emplace_back(job.job_id, std::move(completion));
      ++coalesced_;
      release_turnstile();
      return;
    }
    cached = cache_.lookup(job.key);
    if (cached) {
      ++hits_;
    } else {
      inflight_.try_emplace(job.key);
      ++in_flight_;
      ++solved_;
    }
    release_turnstile();
  }

  // Fast path: an identical request finished earlier.
  if (cached) {
    result.cache_hit = true;
    result.summary = *cached;
    result.latency_ms = elapsed_ms();
    resolve(completion, std::move(result));
    return;
  }

  // Leader path: run the actual solve.
  JobStatus status = JobStatus::kOk;
  std::string error;
  SolveSummary summary;
  try {
    // Reuse this worker's evaluation workspaces across jobs: the pool keeps
    // its grown buffer capacity, so steady-state solves allocate nothing in
    // the GA hot loop. Only this thread ever touches the entry.
    const RobustScheduleOutcome outcome =
        robust_schedule(*job.request.problem, job.request.config,
                        worker_scratch_[worker_index].get());
    if (check_mode_enabled()) {
      // RTS_CHECK debug mode: re-validate both schedules at the service
      // boundary, independently of the core pipeline's own check. A violation
      // fails this job in-band instead of crashing the server.
      const ProblemInstance& problem = *job.request.problem;
      const ScheduleValidator validator(problem.graph, problem.platform);
      const ValidationReport ga_report =
          validator.validate(outcome.schedule, problem.expected);
      const ValidationReport heft_report =
          validator.validate(outcome.heft_schedule, problem.expected);
      RTS_ENSURE(ga_report.ok() && heft_report.ok(),
                 "RTS_CHECK: service result failed validation:\n" +
                     ga_report.to_string() + heft_report.to_string());
    }
    summary = summarize(outcome);
  } catch (const std::exception& e) {
    status = JobStatus::kFailed;
    error = e.what();
  }
  InflightEntry entry;
  {
    // Publish + retire atomically (see the invariant note above): a failed
    // leader retires without caching, so the next duplicate re-solves.
    const LockGuard lock(mutex_);
    if (status == JobStatus::kOk) cache_.insert(job.key, summary);
    auto node = inflight_.extract(job.key);
    RTS_ENSURE(!node.empty(), "in-flight entry vanished");
    entry = std::move(node.mapped());
    --in_flight_;
  }

  result.status = status;
  result.error = error;
  result.cache_hit = false;
  result.summary = summary;
  result.latency_ms = elapsed_ms();
  resolve(completion, std::move(result));

  for (auto& [follower_id, follower_completion] : entry.followers) {
    JobResult follower;
    follower.job_id = follower_id;
    follower.key = job.key;
    follower.status = status;
    follower.error = error;
    // A successful twin counts as a hit (it did not re-solve); a failed one
    // reports cache_hit=false, matching what a sequential re-solve-and-fail
    // would report — keeps result streams thread-count-invariant.
    follower.cache_hit = status == JobStatus::kOk;
    follower.summary = summary;
    follower.latency_ms = elapsed_ms();
    resolve(follower_completion, std::move(follower));
  }
}

ServiceStats SchedulerService::stats() const {
  ServiceStats s;
  {
    const LockGuard lock(mutex_);
    s.submitted = submitted_;
    s.rejected = rejected_;
    s.completed = completed_;
    s.failed = failed_;
    s.hits = hits_;
    s.solved = solved_;
    s.coalesced = coalesced_;
    s.in_flight = in_flight_;
  }
  s.queue_depth = queue_.size();
  s.workers = pool_->worker_count();
  const LatencyRecorder::Quantiles q = latency_.snapshot();
  s.p50_latency_ms = q.p50;
  s.p95_latency_ms = q.p95;
  s.max_latency_ms = q.max;
  s.cache = cache_.stats();
  return s;
}

}  // namespace rts
