#pragma once
// Request/response types of the scheduling service (see docs/service.md).
//
// A job is one robust-scheduling solve: a problem instance plus the full
// RobustSchedulerConfig. The solver pipeline is a pure function of
// (instance, config) — every stochastic component inside it draws from seeds
// carried by the config — so a JobResult is reproducible bit-for-bit no
// matter which worker thread runs it or in what order jobs complete.

#include <cstdint>
#include <memory>
#include <string>

#include "core/robust_scheduler.hpp"
#include "util/digest.hpp"
#include "workload/problem.hpp"

namespace rts {

/// Terminal state of a submitted job.
enum class JobStatus : std::uint8_t {
  kOk,      ///< solve completed (fresh or served from cache)
  kFailed,  ///< the solver threw; JobResult::error carries the message
};

/// Deterministic numeric payload of one solve. This is what the result cache
/// stores and what rts_serve serializes — deliberately free of wall-clock
/// measurements so identical requests yield byte-identical result lines.
struct SolveSummary {
  double heft_makespan = 0.0;   ///< M_HEFT, the ε-constraint reference
  double makespan = 0.0;        ///< M0 of the GA's best schedule
  double avg_slack = 0.0;       ///< average slack of the GA's best schedule
  double mean_tardiness = 0.0;  ///< E[δ] of the GA schedule
  double miss_rate = 0.0;       ///< α of the GA schedule
  double r1 = 0.0;              ///< robustness R1 of the GA schedule
  double r2 = 0.0;              ///< robustness R2 of the GA schedule
  double heft_r1 = 0.0;         ///< R1 of the HEFT baseline
  double heft_r2 = 0.0;         ///< R2 of the HEFT baseline
  std::size_t ga_iterations = 0;

  bool operator==(const SolveSummary&) const = default;
};

/// One scheduling request as accepted by SchedulerService::submit.
struct JobRequest {
  std::shared_ptr<const ProblemInstance> problem;  ///< non-null
  RobustSchedulerConfig config;                    ///< ε, GA + MC knobs, seeds
  int priority = 0;  ///< higher runs first; FIFO within a priority level
};

/// Outcome of one job, delivered through the future returned by submit().
struct JobResult {
  std::uint64_t job_id = 0;      ///< submission sequence number (0-based)
  JobStatus status = JobStatus::kOk;
  std::string error;             ///< non-empty iff status == kFailed
  Digest key;                    ///< content digest the cache keyed this job by
  bool cache_hit = false;        ///< served from cache / coalesced with a twin
  double latency_ms = 0.0;       ///< submit-to-completion wall time (not cached)
  SolveSummary summary;          ///< deterministic solver output
};

}  // namespace rts
