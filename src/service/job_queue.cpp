#include "service/job_queue.hpp"

#include "util/error.hpp"

namespace rts {

JobQueue::JobQueue(std::size_t capacity) : capacity_(capacity) {
  RTS_REQUIRE(capacity >= 1, "job queue capacity must be at least 1");
}

PushOutcome JobQueue::push_locked(QueuedJob&& job) {
  buckets_[job.request.priority].push_back(std::move(job));
  ++size_;
  not_empty_.notify_one();
  return PushOutcome::kAccepted;
}

PushOutcome JobQueue::try_push(QueuedJob job) {
  const LockGuard lock(mutex_);
  if (closed_) return PushOutcome::kRejectedClosed;
  if (size_ >= capacity_) return PushOutcome::kRejectedFull;
  return push_locked(std::move(job));
}

PushOutcome JobQueue::push_wait(QueuedJob job) {
  UniqueLock lock(mutex_);
  not_full_.wait(lock, [this] {
    mutex_.assert_held();
    return closed_ || size_ < capacity_;
  });
  if (closed_) return PushOutcome::kRejectedClosed;
  return push_locked(std::move(job));
}

std::optional<QueuedJob> JobQueue::pop() {
  UniqueLock lock(mutex_);
  not_empty_.wait(lock, [this] {
    mutex_.assert_held();
    return closed_ || size_ > 0;
  });
  if (size_ == 0) return std::nullopt;  // closed and drained
  auto bucket = buckets_.begin();       // highest priority
  QueuedJob job = std::move(bucket->second.front());
  bucket->second.pop_front();
  if (bucket->second.empty()) buckets_.erase(bucket);
  --size_;
  job.pop_seq = pop_count_++;
  not_full_.notify_one();
  return job;
}

void JobQueue::close() {
  // Shutdown-race audit (the close() vs push_wait() lost-wakeup question):
  // closed_ is written under mutex_, and every waiter's predicate reads it
  // under the same mutex — condition_variable_any re-checks the predicate
  // with the lock held before blocking, and its internal mutex serializes
  // the unlock-and-sleep step against notification. A producer is therefore
  // either (a) not yet waiting, in which case its predicate check observes
  // closed_ == true and it never blocks, or (b) already parked, in which
  // case the notify_all below is ordered after its sleep and wakes it. The
  // notifications may run after mutex_ is released — that is the standard
  // (and slightly cheaper) pattern and does not reopen the race, precisely
  // because waiters cannot be between "predicate false" and "asleep" while
  // close() holds the mutex. Producers woken here return kRejectedClosed
  // without needing any consumer to pop (no handoff through not_full_), so
  // close() alone is sufficient to release them promptly.
  {
    const LockGuard lock(mutex_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

std::size_t JobQueue::size() const {
  const LockGuard lock(mutex_);
  return size_;
}

bool JobQueue::closed() const {
  const LockGuard lock(mutex_);
  return closed_;
}

}  // namespace rts
