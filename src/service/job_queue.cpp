#include "service/job_queue.hpp"

#include "util/error.hpp"

namespace rts {

JobQueue::JobQueue(std::size_t capacity) : capacity_(capacity) {
  RTS_REQUIRE(capacity >= 1, "job queue capacity must be at least 1");
}

PushOutcome JobQueue::push_locked(QueuedJob&& job) {
  buckets_[job.request.priority].push_back(std::move(job));
  ++size_;
  not_empty_.notify_one();
  return PushOutcome::kAccepted;
}

PushOutcome JobQueue::try_push(QueuedJob job) {
  const LockGuard lock(mutex_);
  if (closed_) return PushOutcome::kRejectedClosed;
  if (size_ >= capacity_) return PushOutcome::kRejectedFull;
  return push_locked(std::move(job));
}

PushOutcome JobQueue::push_wait(QueuedJob job) {
  UniqueLock lock(mutex_);
  not_full_.wait(lock, [this] {
    mutex_.assert_held();
    return closed_ || size_ < capacity_;
  });
  if (closed_) return PushOutcome::kRejectedClosed;
  return push_locked(std::move(job));
}

std::optional<QueuedJob> JobQueue::pop() {
  UniqueLock lock(mutex_);
  not_empty_.wait(lock, [this] {
    mutex_.assert_held();
    return closed_ || size_ > 0;
  });
  if (size_ == 0) return std::nullopt;  // closed and drained
  auto bucket = buckets_.begin();       // highest priority
  QueuedJob job = std::move(bucket->second.front());
  bucket->second.pop_front();
  if (bucket->second.empty()) buckets_.erase(bucket);
  --size_;
  not_full_.notify_one();
  return job;
}

void JobQueue::close() {
  {
    const LockGuard lock(mutex_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

std::size_t JobQueue::size() const {
  const LockGuard lock(mutex_);
  return size_;
}

bool JobQueue::closed() const {
  const LockGuard lock(mutex_);
  return closed_;
}

}  // namespace rts
