#include "service/service_stats.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace rts {

namespace {
// Fixed seed for the reservoir's replacement stream: snapshots are a
// deterministic function of the recorded latency sequence, so repeated runs
// of the same workload report identical quantile estimates.
constexpr std::uint64_t kReservoirSeed = 0x5eed1a7e9c0ffeeull;
}  // namespace

LatencyRecorder::LatencyRecorder(std::size_t capacity)
    : capacity_(capacity), rng_(kReservoirSeed) {
  RTS_REQUIRE(capacity >= 1, "latency reservoir needs capacity >= 1");
  samples_.reserve(capacity);
}

void LatencyRecorder::record(double latency_ms) {
  const LockGuard lock(mutex_);
  max_ = count_ == 0 ? latency_ms : std::max(max_, latency_ms);
  ++count_;
  if (samples_.size() < capacity_) {
    samples_.push_back(latency_ms);
    return;
  }
  // Algorithm R: sample i (1-based) replaces a reservoir slot with
  // probability capacity/i, keeping every prefix uniformly represented.
  const std::uint64_t slot = rng_.next_below(count_);
  if (slot < capacity_) {
    samples_[static_cast<std::size_t>(slot)] = latency_ms;
  }
}

LatencyRecorder::Quantiles LatencyRecorder::snapshot() const {
  std::vector<double> copy;
  double max = 0.0;
  std::uint64_t count = 0;
  {
    const LockGuard lock(mutex_);
    copy = samples_;
    max = max_;
    count = count_;
  }
  Quantiles q;
  if (count == 0) return q;
  q.p50 = percentile(copy, 50.0);
  q.p95 = percentile(copy, 95.0);
  q.max = max;
  return q;
}

std::uint64_t LatencyRecorder::count() const {
  const LockGuard lock(mutex_);
  return count_;
}

}  // namespace rts
