#include "service/service_stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace rts {

namespace {
// Fixed seed for the reservoir's replacement stream: snapshots are a
// deterministic function of the recorded latency sequence, so repeated runs
// of the same workload report identical quantile estimates.
constexpr std::uint64_t kReservoirSeed = 0x5eed1a7e9c0ffeeull;
}  // namespace

LatencyRecorder::LatencyRecorder(std::size_t capacity)
    : capacity_(capacity), rng_(kReservoirSeed) {
  RTS_REQUIRE(capacity >= 1, "latency reservoir needs capacity >= 1");
  samples_.reserve(capacity);
}

void LatencyRecorder::record(double latency_ms) {
  const LockGuard lock(mutex_);
  max_ = count_ == 0 ? latency_ms : std::max(max_, latency_ms);
  ++count_;
  if (samples_.size() < capacity_) {
    samples_.push_back(latency_ms);
    return;
  }
  // Algorithm R: sample i (1-based) replaces a reservoir slot with
  // probability capacity/i, keeping every prefix uniformly represented.
  const std::uint64_t slot = rng_.next_below(count_);
  if (slot < capacity_) {
    samples_[static_cast<std::size_t>(slot)] = latency_ms;
  }
}

LatencyRecorder::Quantiles LatencyRecorder::snapshot() const {
  std::vector<double> copy;
  double max = 0.0;
  std::uint64_t count = 0;
  {
    const LockGuard lock(mutex_);
    copy = samples_;
    max = max_;
    count = count_;
  }
  Quantiles q;
  if (count == 0) return q;
  q.p50 = percentile(copy, 50.0);
  q.p95 = percentile(copy, 95.0);
  q.max = max;
  return q;
}

std::uint64_t LatencyRecorder::count() const {
  const LockGuard lock(mutex_);
  return count_;
}

namespace {
void append_number(std::ostringstream& os, double value) {
  // Mirrors core/report_io.cpp: max round-trip precision, reject non-finite.
  RTS_REQUIRE(std::isfinite(value), "cannot serialize non-finite value to JSON");
  os.precision(std::numeric_limits<double>::max_digits10);
  os << value;
}
}  // namespace

std::string service_stats_to_json(const ServiceStats& s) {
  std::ostringstream os;
  os << "{\"submitted\":" << s.submitted << ",\"rejected\":" << s.rejected
     << ",\"quota_rejected\":" << s.quota_rejected << ",\"completed\":" << s.completed
     << ",\"failed\":" << s.failed << ",\"hits\":" << s.hits
     << ",\"solved\":" << s.solved << ",\"coalesced\":" << s.coalesced
     << ",\"queue_depth\":" << s.queue_depth << ",\"in_flight\":" << s.in_flight
     << ",\"workers\":" << s.workers;
  os << ",\"p50_latency_ms\":";
  append_number(os, s.p50_latency_ms);
  os << ",\"p95_latency_ms\":";
  append_number(os, s.p95_latency_ms);
  os << ",\"max_latency_ms\":";
  append_number(os, s.max_latency_ms);
  os << ",\"cache_hits\":" << s.cache.hits << ",\"cache_misses\":" << s.cache.misses
     << ",\"cache_evictions\":" << s.cache.evictions
     << ",\"cache_entries\":" << s.cache.entries;
  os << ",\"cache_hit_rate\":";
  append_number(os, s.cache.hit_rate());
  os << '}';
  return os.str();
}

}  // namespace rts
