#include "service/service_stats.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace rts {

void LatencyRecorder::record(double latency_ms) {
  const LockGuard lock(mutex_);
  samples_.push_back(latency_ms);
}

LatencyRecorder::Quantiles LatencyRecorder::snapshot() const {
  std::vector<double> copy;
  {
    const LockGuard lock(mutex_);
    copy = samples_;
  }
  Quantiles q;
  if (copy.empty()) return q;
  q.p50 = percentile(copy, 50.0);
  q.p95 = percentile(copy, 95.0);
  q.max = *std::max_element(copy.begin(), copy.end());
  return q;
}

}  // namespace rts
