#pragma once
// LRU result cache of the scheduling service.
//
// Keys are 128-bit content digests of (problem instance, solver config) —
// see service/fingerprint.hpp — so two requests collide only when they would
// produce the identical SolveSummary anyway. Values are the deterministic
// SolveSummary payloads; wall-clock measurements are deliberately not cached.
// A hit on a repeated request therefore returns in microseconds what a fresh
// GA + Monte-Carlo solve takes milliseconds-to-seconds to compute.
//
// Thread-safe (single mutex — the critical sections are hash-map lookups and
// list splices, orders of magnitude cheaper than one solve).

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "service/job.hpp"
#include "util/digest.hpp"
#include "util/thread_annotations.hpp"

namespace rts {

/// Monotonic hit/miss/eviction counters of a ResultCache.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t capacity = 0;

  /// hits / (hits + misses); 0 when no lookups happened yet.
  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

class ResultCache {
 public:
  /// Cache holding at most `capacity` entries (capacity >= 1); the least
  /// recently used entry is evicted on overflow.
  explicit ResultCache(std::size_t capacity);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Look up `key`, refreshing its recency on a hit. Counts one hit or miss.
  std::optional<SolveSummary> lookup(const Digest& key) RTS_EXCLUDES(mutex_);

  /// Insert/overwrite `key` as the most recently used entry, evicting the
  /// LRU entry when at capacity. Does not touch the hit/miss counters.
  void insert(const Digest& key, const SolveSummary& value) RTS_EXCLUDES(mutex_);

  [[nodiscard]] CacheStats stats() const RTS_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t size() const RTS_EXCLUDES(mutex_);

 private:
  struct Entry {
    Digest key;
    SolveSummary value;
  };

  const std::size_t capacity_;
  mutable Mutex mutex_;
  std::list<Entry> lru_ RTS_GUARDED_BY(mutex_);  ///< front = most recently used
  std::unordered_map<Digest, std::list<Entry>::iterator, DigestHash> index_
      RTS_GUARDED_BY(mutex_);
  std::uint64_t hits_ RTS_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ RTS_GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ RTS_GUARDED_BY(mutex_) = 0;
};

}  // namespace rts
