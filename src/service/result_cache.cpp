#include "service/result_cache.hpp"

#include "util/error.hpp"

namespace rts {

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {
  RTS_REQUIRE(capacity >= 1, "result cache capacity must be at least 1");
}

std::optional<SolveSummary> ResultCache::lookup(const Digest& key) {
  const LockGuard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->value;
}

void ResultCache::insert(const Digest& key, const SolveSummary& value) {
  const LockGuard lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    it->second->value = value;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(Entry{key, value});
  index_.emplace(key, lru_.begin());
}

CacheStats ResultCache::stats() const {
  const LockGuard lock(mutex_);
  CacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  s.capacity = capacity_;
  return s;
}

std::size_t ResultCache::size() const {
  const LockGuard lock(mutex_);
  return lru_.size();
}

}  // namespace rts
