#include "service/worker_pool.hpp"

#include "util/error.hpp"

namespace rts {

WorkerPool::WorkerPool(std::size_t worker_count, JobQueue& queue, JobHandler handler)
    : queue_(queue), handler_(std::move(handler)) {
  RTS_REQUIRE(worker_count >= 1, "worker pool needs at least one thread");
  RTS_REQUIRE(static_cast<bool>(handler_), "worker pool needs a job handler");
  threads_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    threads_.emplace_back([this] {
      while (auto job = queue_.pop()) {
        handler_(std::move(*job));
      }
    });
  }
}

WorkerPool::~WorkerPool() { join(); }

void WorkerPool::join() {
  queue_.close();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

}  // namespace rts
