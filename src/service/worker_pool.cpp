#include "service/worker_pool.hpp"

#include "util/error.hpp"

namespace rts {

WorkerPool::WorkerPool(std::size_t worker_count, JobQueue& queue, JobHandler handler)
    : queue_(queue), handler_(std::move(handler)), worker_count_(worker_count) {
  RTS_REQUIRE(worker_count >= 1, "worker pool needs at least one thread");
  RTS_REQUIRE(static_cast<bool>(handler_), "worker pool needs a job handler");
  const LockGuard lock(join_mutex_);
  threads_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    threads_.emplace_back([this, i] {
      while (auto job = queue_.pop()) {
        handler_(std::move(*job), i);
      }
    });
  }
}

WorkerPool::~WorkerPool() { join(); }

void WorkerPool::join() {
  queue_.close();
  // join_mutex_ makes concurrent join() calls safe: std::thread::join is a
  // data race when two threads target the same std::thread object, so the
  // first caller joins and later callers wait on the mutex until the workers
  // are gone (threads_ is left empty as the joined marker).
  const LockGuard lock(join_mutex_);
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

}  // namespace rts
