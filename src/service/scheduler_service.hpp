#pragma once
// Scheduler-as-a-service facade: a long-lived object that admits a stream of
// robust-scheduling requests and solves them on a pool of worker threads,
// memoizing results by content digest.
//
//   submit() ──> JobQueue (bounded, priority+FIFO) ──> WorkerPool (N threads)
//                                                        │
//                              ResultCache (LRU) <───────┤  solve via
//                              + in-flight coalescing    │  rts::robust_schedule
//                                                        ▼
//                                        std::future<JobResult> resolves
//
// Determinism contract: the solver pipeline is a pure function of
// (instance, config) — all randomness flows from seeds inside the config —
// so the SolveSummary of every job is bit-identical regardless of worker
// count or completion order. Duplicate requests (equal job digest) are
// coalesced: the first job to reach a worker becomes the *leader* and solves;
// concurrent twins park as followers and are resolved from the leader's
// result, and later twins hit the LRU cache. Leader election is deterministic
// too: workers pop from one priority+FIFO queue, and the cache/coalescing
// triage runs in *pop order* (a turnstile keyed on QueuedJob::pop_seq — see
// handle_job), so for any worker count exactly the first-popped job of each
// digest reports cache_hit=false and every other one reports cache_hit=true.
// Popping and triaging in two unsynchronized steps — as an earlier revision
// did — let two workers reach the triage lock in the opposite order and
// occasionally flip which duplicate solved, breaking the byte-identical
// result streams rts_serve promises across --threads values.

#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ga/eval.hpp"
#include "service/job.hpp"
#include "service/job_queue.hpp"
#include "service/result_cache.hpp"
#include "service/service_stats.hpp"
#include "service/worker_pool.hpp"
#include "util/thread_annotations.hpp"

namespace rts {

/// Capacity/concurrency knobs of a SchedulerService.
struct SchedulerServiceConfig {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  std::size_t workers = 0;
  std::size_t queue_capacity = 1024;  ///< waiting jobs before rejection
  std::size_t cache_capacity = 256;   ///< LRU result-cache entries
  /// true: submit() blocks when the queue is full (backpressure);
  /// false: submit() returns nullopt (load shedding).
  bool block_when_full = false;
};

class SchedulerService {
 public:
  explicit SchedulerService(const SchedulerServiceConfig& config = {});

  SchedulerService(const SchedulerService&) = delete;
  SchedulerService& operator=(const SchedulerService&) = delete;

  /// Drains outstanding jobs and joins the workers.
  ~SchedulerService();

  /// Admit one job. Returns the future its JobResult will arrive on, or
  /// nullopt when the job was shed (queue full and !block_when_full, or the
  /// service is shut down). The request's problem pointer must be non-null.
  std::optional<std::future<JobResult>> submit(JobRequest request)
      RTS_EXCLUDES(mutex_);

  /// Admission outcome of submit_async (mirrors the queue's PushOutcome so
  /// transports can distinguish "overloaded, retry later" from "shut down").
  enum class SubmitOutcome : std::uint8_t {
    kAccepted,
    kRejectedFull,    ///< bounded queue at capacity (admission-control shed)
    kRejectedClosed,  ///< service is shutting down
  };

  /// Callback-based admission for event-loop transports that must not block
  /// on a future. On kAccepted, `on_done` is invoked exactly once — from a
  /// worker thread, after the job resolves — and must not throw or block for
  /// long (it runs on the worker that just finished the solve). On rejection
  /// it is never invoked. Uses try_push semantics regardless of
  /// block_when_full: an async caller wants an explicit overload signal, not
  /// backpressure-by-blocking.
  SubmitOutcome submit_async(JobRequest request,
                             std::function<void(JobResult&&)> on_done)
      RTS_EXCLUDES(mutex_);

  /// Close admission, solve everything still queued, join the workers.
  /// Idempotent; called by the destructor.
  void shutdown();

  /// Consistent operational snapshot (counters, gauges, latency quantiles,
  /// cache hit rate).
  [[nodiscard]] ServiceStats stats() const RTS_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t worker_count() const noexcept;

 private:
  /// How a resolved job reports back to its submitter: a future (submit) or
  /// a completion callback (submit_async). Exactly one is active.
  struct Completion {
    std::promise<JobResult> promise;
    std::function<void(JobResult&&)> callback;  ///< non-null => callback mode
  };

  /// A leader's bookkeeping entry while its digest is being solved: twins
  /// that arrive meanwhile park their completions here.
  struct InflightEntry {
    std::vector<std::pair<std::uint64_t, Completion>> followers;
  };

  /// Shared admission core: registers the completion, pushes, and rolls back
  /// on rejection. `blocking` selects push_wait vs try_push.
  PushOutcome admit(JobRequest&& request, Completion&& completion, bool blocking,
                    std::future<JobResult>* future_out) RTS_EXCLUDES(mutex_);

  void handle_job(QueuedJob&& job, std::size_t worker_index) RTS_EXCLUDES(mutex_);
  void resolve(Completion& completion, JobResult&& result)
      RTS_EXCLUDES(mutex_);

  SchedulerServiceConfig config_;
  JobQueue queue_;
  // Lock order: mutex_ before the ResultCache's internal mutex. handle_job
  // touches cache_ while holding mutex_ so that "key is in-flight" and "key
  // is cached" are one atomic fact — see the coalescing invariant in
  // scheduler_service.cpp. Never take mutex_ from inside cache_.
  ResultCache cache_;
  LatencyRecorder latency_;

  mutable Mutex mutex_;  ///< guards completions_, inflight_, counters
  std::unordered_map<std::uint64_t, Completion> completions_
      RTS_GUARDED_BY(mutex_);
  std::unordered_map<Digest, InflightEntry, DigestHash> inflight_
      RTS_GUARDED_BY(mutex_);
  CondVar triage_turn_;  ///< turnstile: triage admitted in pop_seq order
  std::uint64_t triage_next_ RTS_GUARDED_BY(mutex_) = 0;
  std::uint64_t next_job_id_ RTS_GUARDED_BY(mutex_) = 0;
  std::uint64_t submitted_ RTS_GUARDED_BY(mutex_) = 0;
  std::uint64_t rejected_ RTS_GUARDED_BY(mutex_) = 0;
  std::uint64_t completed_ RTS_GUARDED_BY(mutex_) = 0;
  std::uint64_t failed_ RTS_GUARDED_BY(mutex_) = 0;
  std::uint64_t hits_ RTS_GUARDED_BY(mutex_) = 0;
  std::uint64_t solved_ RTS_GUARDED_BY(mutex_) = 0;
  std::uint64_t coalesced_ RTS_GUARDED_BY(mutex_) = 0;
  std::size_t in_flight_ RTS_GUARDED_BY(mutex_) = 0;

  /// Per-worker solver scratch (evaluation-workspace pools), indexed by the
  /// worker index WorkerPool hands to handle_job. Each entry is touched only
  /// by its worker thread, so no locking — and the grown buffer capacity is
  /// reused across that worker's jobs instead of reallocated per solve.
  std::vector<std::unique_ptr<EvalWorkspacePool>> worker_scratch_;

  /// Last member: workers must stop before any other member is destroyed.
  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace rts
