#pragma once
// Bounded, priority-aware MPMC job queue — the admission-control stage of the
// scheduling service.
//
// Semantics:
//   * capacity-bounded: try_push rejects (backpressure signal to the caller)
//     when full, push_wait blocks until space frees up or the queue closes;
//   * priority + FIFO: higher priority pops first, jobs of equal priority
//     pop in submission order (stable — this is what makes the service's
//     cache-leader election deterministic, see scheduler_service.cpp);
//   * close(): producers are refused from then on, consumers drain whatever
//     is left and then observe end-of-stream (pop returns nullopt).
//
// All operations are thread-safe; pop blocks on a condition variable rather
// than spinning.

#include <cstdint>
#include <deque>
#include <map>
#include <optional>

#include "service/job.hpp"
#include "util/thread_annotations.hpp"

namespace rts {

/// A job as it travels through the queue: request + submission metadata.
struct QueuedJob {
  std::uint64_t job_id = 0;
  JobRequest request;
  Digest key;  ///< job_digest, computed once at submit time
  /// Global pop order, stamped by pop() under the queue mutex: the i-th job
  /// ever popped (across all consumer threads) carries pop_seq == i. The
  /// scheduler service serializes its cache/coalescing triage in this order
  /// so leader election stays deterministic for any worker count — see the
  /// triage turnstile in scheduler_service.cpp.
  std::uint64_t pop_seq = 0;
};

/// Outcome of a push attempt.
enum class PushOutcome : std::uint8_t {
  kAccepted,
  kRejectedFull,    ///< bounded capacity exhausted (try_push only)
  kRejectedClosed,  ///< queue is closed to producers
};

class JobQueue {
 public:
  /// Queue admitting at most `capacity` waiting jobs (capacity >= 1).
  explicit JobQueue(std::size_t capacity);

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Non-blocking admission; kRejectedFull when at capacity.
  PushOutcome try_push(QueuedJob job) RTS_EXCLUDES(mutex_);

  /// Blocking admission: waits for space. Returns kAccepted or
  /// kRejectedClosed (never kRejectedFull).
  ///
  /// Shutdown protocol (audited — see the note on close()): a producer
  /// blocked here when close() fires is released promptly and observes
  /// kRejectedClosed even if no consumer ever pops again; a producer that
  /// already pushed before close() has its job drained by the consumers.
  /// There is no window in which a producer stays parked after close() or
  /// in which an accepted job is dropped.
  /// tests/service/test_stress.cpp (CloseReleasesProducersBlockedOnFullQueue)
  /// pins the no-lost-wakeup half; CloseRacingProducersNeverLosesAcceptedJobs
  /// pins the no-lost-job half.
  PushOutcome push_wait(QueuedJob job) RTS_EXCLUDES(mutex_);

  /// Blocking removal of the highest-priority, oldest job. Returns nullopt
  /// only when the queue is closed AND drained.
  std::optional<QueuedJob> pop() RTS_EXCLUDES(mutex_);

  /// Close to producers; consumers drain the remainder. Idempotent.
  void close() RTS_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t size() const RTS_EXCLUDES(mutex_);
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool closed() const RTS_EXCLUDES(mutex_);

 private:
  PushOutcome push_locked(QueuedJob&& job) RTS_REQUIRES(mutex_);

  const std::size_t capacity_;
  mutable Mutex mutex_;
  CondVar not_empty_;
  CondVar not_full_;
  /// priority -> FIFO of jobs at that priority; highest priority first.
  std::map<int, std::deque<QueuedJob>, std::greater<>> buckets_ RTS_GUARDED_BY(mutex_);
  std::size_t size_ RTS_GUARDED_BY(mutex_) = 0;
  std::uint64_t pop_count_ RTS_GUARDED_BY(mutex_) = 0;  ///< next pop_seq stamp
  bool closed_ RTS_GUARDED_BY(mutex_) = false;
};

}  // namespace rts
