#include "net/framing.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace rts {

LineFramer::LineFramer(std::size_t max_line_bytes)
    : max_line_bytes_(max_line_bytes) {
  RTS_REQUIRE(max_line_bytes >= 1, "line framer needs max_line_bytes >= 1");
  buffer_.reserve(std::min<std::size_t>(max_line_bytes, 4096));
}

void LineFramer::emit(const Sink& sink) {
  std::string_view line(buffer_);
  if (discarding_) {
    // The line already overflowed and was reported when it crossed the
    // bound; the newline just ends the discard window.
    discarding_ = false;
    buffer_.clear();
    return;
  }
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  sink(line, FrameStatus::kLine);
  buffer_.clear();
}

void LineFramer::feed(std::string_view chunk, const Sink& sink) {
  while (!chunk.empty()) {
    const std::size_t newline = chunk.find('\n');
    const std::string_view piece =
        newline == std::string_view::npos ? chunk : chunk.substr(0, newline);

    if (discarding_) {
      // Swallow the remainder of an already-reported overlong line.
    } else if (buffer_.size() + piece.size() > max_line_bytes_) {
      // Crossing the bound: report once with a clipped prefix, then discard
      // until the next newline. The preview keeps enough of the line for a
      // useful diagnostic without retaining the oversized payload.
      buffer_.append(piece.substr(
          0, std::min(piece.size(), max_line_bytes_ - buffer_.size())));
      ++overlong_lines_;
      sink(std::string_view(buffer_).substr(
               0, std::min(buffer_.size(), kOverlongPreviewBytes)),
           FrameStatus::kOverlong);
      buffer_.clear();
      discarding_ = true;
    } else {
      buffer_.append(piece);
    }

    if (newline == std::string_view::npos) return;  // chunk exhausted mid-line
    emit(sink);
    chunk.remove_prefix(newline + 1);
  }
}

void LineFramer::finish(const Sink& sink) {
  if (discarding_) {
    // The overlong line was already reported; EOF just ends the discard.
    discarding_ = false;
    buffer_.clear();
    return;
  }
  if (buffer_.empty()) return;
  emit(sink);
}

}  // namespace rts
