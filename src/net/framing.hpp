#pragma once
// Newline-delimited request framing shared by every request path.
//
// Both front ends of rts_serve — the batch file reader and the socket
// transport — speak the same wire format: one request per line. Before this
// helper existed each path re-implemented line splitting with subtly
// different behavior (std::getline kept stray '\r' from CRLF files, a final
// line without a trailing newline was silently dropped on the socket path,
// and nothing bounded line length, so one malicious or corrupt line could
// grow a buffer without limit). LineFramer is the single implementation:
//
//   * splits on '\n'; a single trailing '\r' is stripped (CRLF tolerated),
//     a bare '\r' inside a line is payload, not a separator;
//   * finish() flushes a final line that is missing its trailing newline —
//     a truncated trace file or a client that shuts down the socket after
//     the last byte still gets its request seen;
//   * bounded: a line longer than max_line_bytes is rejected, not buffered —
//     the framer reports it once (with a clipped prefix for the diagnostic),
//     swallows bytes until the next '\n', and then resumes normally. Memory
//     held per connection is therefore O(max_line_bytes) no matter what the
//     peer sends.
//
// Feeding is incremental: chunks can split a line anywhere (byte-fragmented
// sockets, pipelined batches of many lines per chunk — both are just calls
// to feed()). Lines are delivered to a sink callback in input order.

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>

namespace rts {

/// Disposition of one framed line.
enum class FrameStatus : std::uint8_t {
  kLine,      ///< a complete line (CR/LF stripped); payload is the full line
  kOverlong,  ///< line exceeded max_line_bytes; payload is a clipped prefix
};

class LineFramer {
 public:
  /// Default per-line bound. Generous for request lines (a request is a path
  /// plus a handful of options) while keeping worst-case per-connection
  /// buffering small.
  static constexpr std::size_t kDefaultMaxLineBytes = 64 * 1024;
  /// How much of an overlong line is kept for the diagnostic payload.
  static constexpr std::size_t kOverlongPreviewBytes = 128;

  /// Sink invoked once per framed line, in input order. For kOverlong the
  /// view holds at most kOverlongPreviewBytes of the line's prefix.
  using Sink = std::function<void(std::string_view, FrameStatus)>;

  explicit LineFramer(std::size_t max_line_bytes = kDefaultMaxLineBytes);

  /// Consume a chunk, invoking `sink` for every line completed by it.
  void feed(std::string_view chunk, const Sink& sink);

  /// Flush a final unterminated line (end of file / peer shutdown). Safe to
  /// call when the buffer is empty; the framer is reusable afterwards.
  void finish(const Sink& sink);

  /// Total lines delivered with status kOverlong (diagnostic counter).
  [[nodiscard]] std::uint64_t overlong_lines() const noexcept {
    return overlong_lines_;
  }

  /// Bytes currently buffered waiting for a newline (bounded by
  /// max_line_bytes even mid-overflow).
  [[nodiscard]] std::size_t buffered_bytes() const noexcept {
    return buffer_.size();
  }

  [[nodiscard]] std::size_t max_line_bytes() const noexcept {
    return max_line_bytes_;
  }

 private:
  void emit(const Sink& sink);

  std::size_t max_line_bytes_;
  std::string buffer_;
  bool discarding_ = false;  ///< swallowing the rest of an overlong line
  std::uint64_t overlong_lines_ = 0;
};

}  // namespace rts
