#include "net/epoll_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.hpp"

namespace rts {

namespace {

// epoll_event.data.u64 slots for the server's own fds; connection ids start
// above these so a stale event for a destroyed connection can never collide.
constexpr std::uint64_t kListenSlot = 0;
constexpr std::uint64_t kWakeSlot = 1;
constexpr std::uint64_t kDrainSlot = 2;
constexpr std::uint64_t kFirstConnId = 3;

constexpr std::size_t kReadChunkBytes = 16 * 1024;

[[noreturn]] void throw_errno(const char* what) {
  RTS_ENSURE(false, std::string(what) + ": " + std::strerror(errno));
  // RTS_ENSURE(false, ...) always throws; this quiets the [[noreturn]] check.
  throw std::logic_error("unreachable");
}

void add_to_epoll(int epoll_fd, int fd, std::uint64_t slot, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = slot;
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(ADD)");
  }
}

}  // namespace

EpollServer::EpollServer(std::uint16_t port, Callbacks callbacks)
    : callbacks_(std::move(callbacks)), next_id_(kFirstConnId) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");

  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) throw_errno("eventfd(wake)");
  drain_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (drain_fd_ < 0) throw_errno("eventfd(drain)");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int enable = 1;
  if (::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
                   sizeof(enable)) != 0) {
    throw_errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback-only by design
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw_errno("bind");
  }
  if (::listen(listen_fd_, 128) != 0) throw_errno("listen");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  add_to_epoll(epoll_fd_, listen_fd_, kListenSlot, EPOLLIN);
  add_to_epoll(epoll_fd_, wake_fd_, kWakeSlot, EPOLLIN);
  add_to_epoll(epoll_fd_, drain_fd_, kDrainSlot, EPOLLIN);
}

EpollServer::~EpollServer() {
  for (auto& [id, conn] : connections_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (drain_fd_ >= 0) ::close(drain_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EpollServer::run() {
  running_ = true;
  epoll_event events[64];
  while (running_) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("epoll_wait");
    }
    for (int i = 0; i < n && running_; ++i) {
      const std::uint64_t slot = events[i].data.u64;
      const std::uint32_t mask = events[i].events;
      if (slot == kListenSlot) {
        handle_accept();
        continue;
      }
      if (slot == kWakeSlot) {
        std::uint64_t counter = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &counter, sizeof(counter));
        drain_posted();
        continue;
      }
      if (slot == kDrainSlot) {
        std::uint64_t counter = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(drain_fd_, &counter, sizeof(counter));
        if (!drain_seen_) {
          drain_seen_ = true;
          stop_accepting();
          if (callbacks_.on_drain) callbacks_.on_drain();
        }
        continue;
      }
      // A connection event. The id lookup also shields against stale events
      // for a connection destroyed earlier in this same batch.
      if (connections_.find(slot) == connections_.end()) continue;
      if ((mask & (EPOLLERR | EPOLLHUP)) != 0) {
        // EPOLLHUP means both directions are gone (a plain half-close
        // surfaces as EPOLLIN + read()==0 instead) — nothing more can be
        // written, so flushing is pointless. Tear down.
        destroy(slot);
        continue;
      }
      if ((mask & EPOLLIN) != 0) handle_readable(slot);
      if (connections_.find(slot) == connections_.end()) continue;
      if ((mask & EPOLLOUT) != 0) handle_writable(slot);
    }
  }
}

void EpollServer::handle_accept() {
  // Accept everything ready: level-triggered EPOLLIN would re-arm anyway,
  // but draining the backlog here saves wakeups under a connection burst.
  while (listen_fd_ >= 0) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == ECONNABORTED || errno == EINTR) continue;
      throw_errno("accept4");
    }
    const ConnId id = next_id_++;
    Connection conn;
    conn.id = id;
    conn.fd = fd;
    conn.events = EPOLLIN;
    add_to_epoll(epoll_fd_, fd, id, EPOLLIN);
    connections_.emplace(id, std::move(conn));
    if (callbacks_.on_accept) callbacks_.on_accept(id);
  }
}

void EpollServer::handle_readable(ConnId id) {
  char buf[kReadChunkBytes];
  while (true) {
    const auto it = connections_.find(id);
    if (it == connections_.end()) return;  // a callback closed it mid-read
    const ssize_t n = ::recv(it->second.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      if (callbacks_.on_data) {
        callbacks_.on_data(id, std::string_view(buf, static_cast<std::size_t>(n)));
      }
      continue;
    }
    if (n == 0) {
      // Orderly EOF: the peer finished sending but may still be reading our
      // responses. Stop polling for input; the policy decides when to close.
      disable_reads(id);
      if (callbacks_.on_eof) callbacks_.on_eof(id);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    destroy(id);  // ECONNRESET and friends: abrupt disconnect
    return;
  }
}

void EpollServer::handle_writable(ConnId id) {
  const auto it = connections_.find(id);
  if (it == connections_.end()) return;
  flush(id, it->second);
}

void EpollServer::send(ConnId id, std::string_view data) {
  const auto it = connections_.find(id);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  conn.out.append(data);
  flush(id, conn);
}

void EpollServer::flush(ConnId id, Connection& conn) {
  while (conn.out_offset < conn.out.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.out_offset,
               conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_offset += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      update_interest(conn, conn.events | EPOLLOUT);
      return;
    }
    if (errno == EINTR) continue;
    destroy(id);  // EPIPE/ECONNRESET: the peer is gone, drop the buffer
    return;
  }
  conn.out.clear();
  conn.out_offset = 0;
  update_interest(conn, conn.events & ~static_cast<std::uint32_t>(EPOLLOUT));
  if (conn.close_after_flush) destroy(id);
}

void EpollServer::close_after_flush(ConnId id) {
  const auto it = connections_.find(id);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  if (conn.out_offset >= conn.out.size()) {
    destroy(id);
    return;
  }
  conn.close_after_flush = true;
}

void EpollServer::close_now(ConnId id) {
  if (connections_.find(id) != connections_.end()) destroy(id);
}

void EpollServer::disable_reads(ConnId id) {
  const auto it = connections_.find(id);
  if (it == connections_.end()) return;
  update_interest(it->second, it->second.events & ~static_cast<std::uint32_t>(EPOLLIN));
}

void EpollServer::update_interest(Connection& conn, std::uint32_t events) {
  if (events == conn.events) return;
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = conn.id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) != 0) {
    throw_errno("epoll_ctl(MOD)");
  }
  conn.events = events;
}

void EpollServer::destroy(ConnId id) {
  const auto it = connections_.find(id);
  if (it == connections_.end()) return;
  // close() removes the fd from the epoll interest list implicitly.
  ::close(it->second.fd);
  connections_.erase(it);
  if (callbacks_.on_closed) callbacks_.on_closed(id);
}

void EpollServer::stop_accepting() {
  if (listen_fd_ < 0) return;
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void EpollServer::post(std::function<void()> fn) {
  {
    const LockGuard lock(post_mutex_);
    posted_.push_back(std::move(fn));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t r = ::write(wake_fd_, &one, sizeof(one));
}

void EpollServer::request_drain() noexcept {
  // Async-signal-safe: one write(2) to an eventfd, no locks, no allocation.
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t r = ::write(drain_fd_, &one, sizeof(one));
}

void EpollServer::drain_posted() {
  std::deque<std::function<void()>> batch;
  {
    const LockGuard lock(post_mutex_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

}  // namespace rts
