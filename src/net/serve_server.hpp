#pragma once
// ServeServer — the socket front end of rts_serve: plugs the wire protocol
// (serve_protocol) and request framing (LineFramer) into the epoll transport
// (EpollServer) and drives jobs through a SchedulerService.
//
// Per connection it keeps a framer, a job-index counter, and an in-order
// delivery window: responses are sent strictly in per-connection request
// order even though workers finish out of order (a ready map parks early
// finishers until their turn). Job indexes count exactly the lines that the
// batch front end would count — blank and comment-only lines consume no
// index — so for the same request lines the "ok"/"failed" response stream is
// byte-identical to `rts_serve --requests`.
//
// Admission control, two layers:
//   * per-connection quota: at most `per_conn_quota` jobs in flight per
//     client; excess lines are answered {"status":"rejected","error":
//     "quota_exceeded"} without ever reaching the service;
//   * service queue: submit_async never blocks the loop — a full bounded
//     queue answers {"status":"rejected","error":"overloaded"}.
//
// Graceful drain (SIGTERM → request_drain()): stop accepting connections,
// stop reading from existing ones, let every job already accepted by the
// service resolve, flush its response, then close. Bytes that were buffered
// but not yet framed into an accepted request are dropped — "accepted" means
// the service took the job, and no accepted job loses its response.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>

#include "net/epoll_server.hpp"
#include "net/framing.hpp"
#include "net/serve_protocol.hpp"
#include "service/scheduler_service.hpp"

namespace rts {

struct ServeServerConfig {
  std::uint16_t port = 0;  ///< 0 = ephemeral; see ServeServer::port()
  /// Max jobs in flight per connection before quota rejection.
  std::size_t per_conn_quota = 64;
  std::size_t max_line_bytes = LineFramer::kDefaultMaxLineBytes;
};

class ServeServer {
 public:
  /// The service must outlive this object, and — because workers deliver
  /// results via EpollServer::post — service.shutdown() must complete before
  /// this object is destroyed.
  ServeServer(SchedulerService& service, const ServeServerConfig& config);

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return epoll_.port(); }

  /// Run the event loop on the calling thread; returns after a drain
  /// completes (every accepted job's response flushed, every connection
  /// closed).
  void run() { epoll_.run(); }

  /// Async-signal-safe graceful-shutdown trigger (wire to SIGTERM).
  void request_drain() noexcept { epoll_.request_drain(); }

  /// Transport-level rejection counters (read after run() returns, or from
  /// the loop thread). Folded into ServiceStats by the caller.
  [[nodiscard]] std::uint64_t quota_rejected() const noexcept {
    return quota_rejected_;
  }
  [[nodiscard]] std::uint64_t overload_rejected() const noexcept {
    return overload_rejected_;
  }

 private:
  struct Conn {
    explicit Conn(std::size_t max_line_bytes) : framer(max_line_bytes) {}
    LineFramer framer;
    std::uint64_t next_index = 0;    ///< job index of the next request line
    std::uint64_t next_to_send = 0;  ///< job index owed to the client next
    /// Responses that finished ahead of their turn, keyed by job index.
    std::map<std::uint64_t, std::string> ready;
    std::size_t outstanding = 0;  ///< jobs accepted, response not yet queued
    bool eof = false;
  };

  void on_accept(EpollServer::ConnId id);
  void on_data(EpollServer::ConnId id, std::string_view chunk);
  void on_eof(EpollServer::ConnId id);
  void on_closed(EpollServer::ConnId id);
  void on_drain();

  /// Process one framed request line (loop thread).
  void handle_line(EpollServer::ConnId id, std::string_view line,
                   FrameStatus status);
  /// Park a finished response and flush the in-order prefix to the socket.
  void deliver(EpollServer::ConnId id, std::uint64_t index, std::string line);
  /// A worker-completed job arriving back on the loop thread.
  void on_job_done(EpollServer::ConnId id, std::uint64_t index,
                   std::string line);
  /// Close the connection if it is finished (EOF or draining, nothing owed).
  void maybe_close(EpollServer::ConnId id);

  SchedulerService& service_;
  ServeServerConfig config_;
  ProblemCache problems_;  ///< loop-thread confined
  std::unordered_map<EpollServer::ConnId, Conn> conns_;
  std::uint64_t quota_rejected_ = 0;
  std::uint64_t overload_rejected_ = 0;
  bool draining_ = false;

  /// Last member: its callbacks capture `this` and touch the state above.
  EpollServer epoll_;
};

}  // namespace rts
