#include "net/serve_server.hpp"

#include <utility>
#include <vector>

namespace rts {

ServeServer::ServeServer(SchedulerService& service,
                         const ServeServerConfig& config)
    : service_(service),
      config_(config),
      epoll_(config.port,
             EpollServer::Callbacks{
                 [this](EpollServer::ConnId id) { on_accept(id); },
                 [this](EpollServer::ConnId id, std::string_view chunk) {
                   on_data(id, chunk);
                 },
                 [this](EpollServer::ConnId id) { on_eof(id); },
                 [this](EpollServer::ConnId id) { on_closed(id); },
                 [this] { on_drain(); },
             }) {}

void ServeServer::on_accept(EpollServer::ConnId id) {
  conns_.emplace(id, Conn(config_.max_line_bytes));
}

void ServeServer::on_data(EpollServer::ConnId id, std::string_view chunk) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  // Frame into an owned batch first: handle_line can synchronously reject a
  // request, and a rejection's send() can detect a dead peer and destroy the
  // connection — which owns the framer we would still be iterating inside.
  std::vector<std::pair<std::string, FrameStatus>> lines;
  it->second.framer.feed(chunk, [&lines](std::string_view line, FrameStatus s) {
    lines.emplace_back(std::string(line), s);
  });
  for (auto& [line, status] : lines) {
    if (conns_.find(id) == conns_.end()) return;  // destroyed mid-batch
    handle_line(id, line, status);
  }
}

void ServeServer::on_eof(EpollServer::ConnId id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  it->second.eof = true;
  // A final request line without a trailing newline still counts (same as
  // the batch reader hitting end-of-file mid-line).
  std::vector<std::pair<std::string, FrameStatus>> lines;
  it->second.framer.finish(
      [&lines](std::string_view line, FrameStatus s) {
        lines.emplace_back(std::string(line), s);
      });
  for (auto& [line, status] : lines) {
    if (conns_.find(id) == conns_.end()) return;
    handle_line(id, line, status);
  }
  maybe_close(id);
}

void ServeServer::on_closed(EpollServer::ConnId id) {
  // Jobs this connection still has in flight keep running; their responses
  // are dropped in on_job_done when the id no longer resolves.
  conns_.erase(id);
  if (draining_ && conns_.empty()) epoll_.stop();
}

void ServeServer::on_drain() {
  draining_ = true;
  // Stop consuming input everywhere (buffered-but-unframed bytes are
  // dropped; accepted jobs are not), then close whatever is already idle.
  std::vector<EpollServer::ConnId> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (const EpollServer::ConnId id : ids) epoll_.disable_reads(id);
  for (const EpollServer::ConnId id : ids) maybe_close(id);
  if (conns_.empty()) epoll_.stop();
}

void ServeServer::handle_line(EpollServer::ConnId id, std::string_view line,
                              FrameStatus status) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;

  if (status == FrameStatus::kOverlong) {
    // An overlong line is still a request line: it consumes a job index and
    // fails, identically in batch and socket mode.
    const std::uint64_t index = conn.next_index++;
    deliver(id, index,
            render_failure_line(index, line,
                                overlong_line_error(conn.framer.max_line_bytes())));
    return;
  }

  const std::optional<std::string_view> payload = strip_request_line(line);
  if (!payload) return;  // blank/comment: no job index consumed
  const std::uint64_t index = conn.next_index++;

  if (conn.outstanding >= config_.per_conn_quota) {
    ++quota_rejected_;
    deliver(id, index, render_reject_line(index, "quota_exceeded"));
    return;
  }

  ParsedRequest parsed;
  try {
    parsed = parse_request_line(*payload, problems_);
  } catch (const std::exception& e) {
    deliver(id, index, render_failure_line(index, *payload, e.what()));
    return;
  }

  const std::string path = parsed.problem_path;
  const SchedulerService::SubmitOutcome outcome = service_.submit_async(
      std::move(parsed.request),
      [this, id, index, path](JobResult&& result) {
        // Worker thread: render here (pure function of the result), then
        // bounce the bytes to the loop thread for ordered delivery.
        std::string rendered;
        try {
          rendered = render_result_line(index, path, result);
        } catch (const std::exception& e) {
          rendered = render_failure_line(index, path, e.what());
        }
        epoll_.post([this, id, index, line = std::move(rendered)]() mutable {
          on_job_done(id, index, std::move(line));
        });
      });
  switch (outcome) {
    case SchedulerService::SubmitOutcome::kAccepted:
      // `conn` is still valid: nothing above this line since the lookup can
      // destroy a connection.
      ++conn.outstanding;
      return;
    case SchedulerService::SubmitOutcome::kRejectedFull:
      ++overload_rejected_;
      deliver(id, index, render_reject_line(index, "overloaded"));
      return;
    case SchedulerService::SubmitOutcome::kRejectedClosed:
      deliver(id, index, render_reject_line(index, "shutting_down"));
      return;
  }
}

void ServeServer::deliver(EpollServer::ConnId id, std::uint64_t index,
                          std::string line) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  it->second.ready.emplace(index, std::move(line));
  // Flush the in-order prefix. send() can destroy the connection (peer
  // reset), so re-resolve the id every round instead of holding a reference.
  while (true) {
    const auto cit = conns_.find(id);
    if (cit == conns_.end()) return;
    Conn& conn = cit->second;
    const auto rit = conn.ready.find(conn.next_to_send);
    if (rit == conn.ready.end()) return;
    std::string out = std::move(rit->second);
    out.push_back('\n');
    conn.ready.erase(rit);
    ++conn.next_to_send;
    epoll_.send(id, out);
  }
}

void ServeServer::on_job_done(EpollServer::ConnId id, std::uint64_t index,
                              std::string line) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;  // client disconnected; drop the response
  --it->second.outstanding;
  deliver(id, index, std::move(line));
  maybe_close(id);
}

void ServeServer::maybe_close(EpollServer::ConnId id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  const Conn& conn = it->second;
  // Finished = the client is done sending (or we stopped listening to it)
  // and every response it is owed has been queued to the socket. The
  // transport then closes after its write buffer drains.
  if ((conn.eof || draining_) && conn.outstanding == 0 && conn.ready.empty()) {
    epoll_.close_after_flush(id);
  }
}

}  // namespace rts
