#pragma once
// The rts_serve wire protocol, shared by every front end (see
// docs/service.md, "Wire protocol"): request-line parsing and response-line
// rendering live here — in the library, not the app — so the batch file
// path, the socket path, and the tests all speak bit-identical formats.
//
// Requests: one job per line —
//   PROBLEM_FILE [--epsilon E] [--iters N] [--seed S] [--realizations N]
//                [--mc-seed S] [--priority P] [--stochastic]
// '#' starts a comment; blank/comment-only lines carry no job and consume no
// job index.
//
// Responses: one JSON object per job, in per-stream submission order:
//   {"job":N,"problem":...,"status":"ok",...solver fields...}
//   {"job":N,"problem":...,"status":"failed","error":...}
//   {"job":N,"status":"rejected","error":"overloaded"|"quota_exceeded"|
//                                         "shutting_down"}
// "ok"/"failed" lines are byte-identical between batch and socket mode for
// the same request stream; "rejected" lines exist only where admission
// control can shed (the socket path).

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "service/job.hpp"
#include "workload/problem.hpp"

namespace rts {

/// Strip the '#' comment suffix and surrounding whitespace. Returns nullopt
/// when nothing remains (the line consumes no job index).
[[nodiscard]] std::optional<std::string_view> strip_request_line(
    std::string_view line);

/// Per-process cache of loaded problem files: N jobs naming one file load it
/// once. Not thread-safe — confine to the submitting thread (the batch
/// submission loop / the event-loop thread).
class ProblemCache {
 public:
  /// Load (or return the cached) problem file. Throws on open/parse failure.
  std::shared_ptr<const ProblemInstance> load(const std::string& path);

 private:
  std::map<std::string, std::shared_ptr<const ProblemInstance>> problems_;
};

/// One parsed request line.
struct ParsedRequest {
  JobRequest request;
  std::string problem_path;  ///< as written on the line (response echo)
};

/// Parse one *stripped* request line (strip_request_line returned a
/// payload). Throws InvalidArgument on malformed lines and propagates
/// problem-file load failures.
[[nodiscard]] ParsedRequest parse_request_line(std::string_view line,
                                               ProblemCache& problems);

/// Render the response line for a resolved job (status "ok" or "failed").
/// No trailing newline.
[[nodiscard]] std::string render_result_line(std::uint64_t job_index,
                                             std::string_view problem_path,
                                             const JobResult& result);

/// Render a "failed" response for a line that never reached the solver
/// (malformed, unloadable problem, overlong frame). No trailing newline.
[[nodiscard]] std::string render_failure_line(std::uint64_t job_index,
                                              std::string_view problem_path,
                                              std::string_view error);

/// Render a "rejected" response (admission control: queue overload or a
/// per-connection quota). The job was not accepted; the client may retry.
/// No trailing newline.
[[nodiscard]] std::string render_reject_line(std::uint64_t job_index,
                                             std::string_view reason);

/// Diagnostic for a request line the framer refused as overlong. Shared so
/// the batch and socket paths fail such lines with identical bytes.
[[nodiscard]] std::string overlong_line_error(std::size_t max_line_bytes);

}  // namespace rts
