#pragma once
// Single-threaded, non-blocking TCP front end built on epoll.
//
// EpollServer owns the listening socket, the epoll instance, and every
// accepted connection's fds and write buffers. It knows nothing about the
// request protocol: a transport policy object (ServeServer) plugs in through
// the Callbacks struct and drives replies through send()/close_after_flush().
//
// Threading model — one loop thread, two doors in:
//   * every callback fires on the loop thread (the thread inside run()), and
//     send()/close_*/stop()/stop_accepting()/disable_reads() may only be
//     called from there (i.e. from inside a callback);
//   * post(fn) is the thread-safe door: any thread may hand the loop a
//     closure, which runs on the loop thread on its next wakeup (an eventfd
//     makes epoll_wait return). Worker threads deliver job results this way;
//   * request_drain() is the async-signal-safe door: a single eventfd write,
//     callable from a SIGTERM handler. The loop answers by closing the listen
//     socket (no new connections) and invoking on_drain exactly once; the
//     policy layer decides how to wind down from there.
//
// Backpressure: send() appends to a per-connection buffer and writes what the
// socket accepts immediately; the remainder drains under EPOLLOUT, so a slow
// reader never blocks the loop. Reads are level-triggered EPOLLIN, consumed
// in bounded chunks; disable_reads() lets the policy stop consuming (drain
// mode) without closing the socket.

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/thread_annotations.hpp"

namespace rts {

class EpollServer {
 public:
  /// Identifies one accepted connection across callbacks. Never reused within
  /// a server's lifetime.
  using ConnId = std::uint64_t;

  /// Protocol hooks, all invoked on the loop thread. Any of them may be left
  /// empty. on_closed fires exactly once per accepted connection, whatever
  /// the cause (peer reset, close_now, close_after_flush completion).
  struct Callbacks {
    std::function<void(ConnId)> on_accept;
    std::function<void(ConnId, std::string_view)> on_data;
    /// Peer half-closed its write side (orderly EOF). The connection stays
    /// open for writing until the policy closes it.
    std::function<void(ConnId)> on_eof;
    std::function<void(ConnId)> on_closed;
    /// request_drain() was observed; the listen socket is already closed.
    std::function<void()> on_drain;
  };

  /// Binds a loopback listener on `port` (0 = ephemeral, see port()).
  /// Throws on any socket/bind/listen/epoll failure.
  EpollServer(std::uint16_t port, Callbacks callbacks);
  ~EpollServer();

  EpollServer(const EpollServer&) = delete;
  EpollServer& operator=(const EpollServer&) = delete;

  /// The bound port (resolves an ephemeral request).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Run the event loop on the calling thread until stop().
  void run();

  // ---- loop-thread-only surface (call from inside callbacks) ----

  /// Queue bytes to `id` and flush as much as the socket accepts now; the
  /// rest drains under EPOLLOUT. No-op for an unknown/closed id.
  void send(ConnId id, std::string_view data);

  /// Close once the write buffer has fully drained (immediately if empty).
  void close_after_flush(ConnId id);

  /// Close immediately, dropping any unflushed output.
  void close_now(ConnId id);

  /// Stop reading from `id` (EPOLLIN off); buffered output still drains.
  void disable_reads(ConnId id);

  /// Close the listen socket; existing connections are untouched. Idempotent.
  void stop_accepting();

  /// Make run() return after the current callback completes.
  void stop() noexcept { running_ = false; }

  [[nodiscard]] std::size_t connection_count() const noexcept {
    return connections_.size();
  }
  [[nodiscard]] bool accepting() const noexcept { return listen_fd_ >= 0; }
  [[nodiscard]] bool draining() const noexcept { return drain_seen_; }

  // ---- cross-thread surface ----

  /// Run `fn` on the loop thread at its next wakeup. Thread-safe.
  void post(std::function<void()> fn) RTS_EXCLUDES(post_mutex_);

  /// Request graceful drain. Async-signal-safe (one eventfd write, no
  /// locks, no allocation) — safe to call from a signal handler.
  void request_drain() noexcept;

 private:
  struct Connection {
    ConnId id = 0;
    int fd = -1;
    std::string out;             ///< pending output (unflushed suffix)
    std::size_t out_offset = 0;  ///< bytes of `out` already written
    std::uint32_t events = 0;    ///< current epoll interest mask
    bool close_after_flush = false;
  };

  void handle_accept();
  void handle_readable(ConnId id);
  void handle_writable(ConnId id);
  void destroy(ConnId id);
  void flush(ConnId id, Connection& conn);
  void update_interest(Connection& conn, std::uint32_t events);
  void drain_posted() RTS_EXCLUDES(post_mutex_);

  Callbacks callbacks_;
  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;   ///< eventfd: post() queue has work
  int drain_fd_ = -1;  ///< eventfd: request_drain() fired (signal-safe door)
  std::uint16_t port_ = 0;
  bool running_ = false;
  bool drain_seen_ = false;
  ConnId next_id_;
  std::unordered_map<ConnId, Connection> connections_;

  Mutex post_mutex_;
  std::deque<std::function<void()>> posted_ RTS_GUARDED_BY(post_mutex_);
};

}  // namespace rts
