#include "net/serve_protocol.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "util/cli.hpp"
#include "util/error.hpp"
#include "workload/serialization.hpp"

namespace rts {

namespace {

void append_number(std::ostringstream& os, double value) {
  // Mirrors core/report_io.cpp: max round-trip precision, reject non-finite.
  RTS_REQUIRE(std::isfinite(value), "cannot serialize non-finite value to JSON");
  os.precision(std::numeric_limits<double>::max_digits10);
  os << value;
}

void append_string(std::ostringstream& os, std::string_view text) {
  os << '"';
  for (const char ch : text) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          os << "\\u00" << (ch < 16 ? "0" : "") << std::hex << static_cast<int>(ch)
             << std::dec;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

}  // namespace

std::optional<std::string_view> strip_request_line(std::string_view line) {
  if (const auto hash = line.find('#'); hash != std::string_view::npos) {
    line = line.substr(0, hash);
  }
  const auto first = line.find_first_not_of(" \t\r");
  if (first == std::string_view::npos) return std::nullopt;
  const auto last = line.find_last_not_of(" \t\r");
  return line.substr(first, last - first + 1);
}

std::shared_ptr<const ProblemInstance> ProblemCache::load(
    const std::string& path) {
  auto it = problems_.find(path);
  if (it == problems_.end()) {
    auto loaded =
        std::make_shared<const ProblemInstance>(load_problem_file(path));
    it = problems_.emplace(path, std::move(loaded)).first;
  }
  return it->second;
}

ParsedRequest parse_request_line(std::string_view line, ProblemCache& problems) {
  std::vector<std::string> tokens;
  std::istringstream is{std::string(line)};
  for (std::string tok; is >> tok;) tokens.push_back(tok);
  std::vector<const char*> argv;
  argv.reserve(tokens.size() + 1);
  argv.push_back("request");  // Options skips argv[0] (program-name slot)
  for (const std::string& tok : tokens) argv.push_back(tok.c_str());
  const Options opts(static_cast<int>(argv.size()), argv.data());
  RTS_REQUIRE(opts.positional().size() == 1,
              "request line needs exactly one problem file, got: " +
                  std::string(line));

  ParsedRequest parsed;
  parsed.problem_path = opts.positional().front();
  parsed.request.problem = problems.load(parsed.problem_path);
  parsed.request.config.ga.epsilon = opts.get_double("epsilon", 1.0);
  parsed.request.config.ga.max_iterations =
      static_cast<std::size_t>(opts.get_int("iters", 1000));
  parsed.request.config.ga.seed =
      static_cast<std::uint64_t>(opts.get_int("seed", 1));
  parsed.request.config.mc.realizations =
      static_cast<std::size_t>(opts.get_int("realizations", 1000));
  parsed.request.config.mc.seed =
      static_cast<std::uint64_t>(opts.get_int("mc-seed", 42));
  parsed.request.config.stochastic_objective = opts.get_bool("stochastic", false);
  parsed.request.priority = static_cast<int>(opts.get_int("priority", 0));
  return parsed;
}

std::string render_result_line(std::uint64_t job_index,
                               std::string_view problem_path,
                               const JobResult& result) {
  if (result.status != JobStatus::kOk) {
    return render_failure_line(job_index, problem_path, result.error);
  }
  std::ostringstream os;
  os << "{\"job\":" << job_index << ",\"problem\":";
  append_string(os, problem_path);
  const SolveSummary& s = result.summary;
  os << ",\"status\":\"ok\",\"cache_hit\":" << (result.cache_hit ? "true" : "false");
  os << ",\"digest\":\"" << result.key.to_hex() << '"';
  os << ",\"heft_makespan\":";
  append_number(os, s.heft_makespan);
  os << ",\"makespan\":";
  append_number(os, s.makespan);
  os << ",\"avg_slack\":";
  append_number(os, s.avg_slack);
  os << ",\"mean_tardiness\":";
  append_number(os, s.mean_tardiness);
  os << ",\"miss_rate\":";
  append_number(os, s.miss_rate);
  os << ",\"r1\":";
  append_number(os, s.r1);
  os << ",\"r2\":";
  append_number(os, s.r2);
  os << ",\"heft_r1\":";
  append_number(os, s.heft_r1);
  os << ",\"heft_r2\":";
  append_number(os, s.heft_r2);
  os << ",\"ga_iterations\":" << s.ga_iterations << '}';
  return os.str();
}

std::string render_failure_line(std::uint64_t job_index,
                                std::string_view problem_path,
                                std::string_view error) {
  std::ostringstream os;
  os << "{\"job\":" << job_index << ",\"problem\":";
  append_string(os, problem_path);
  os << ",\"status\":\"failed\",\"error\":";
  append_string(os, error);
  os << '}';
  return os.str();
}

std::string render_reject_line(std::uint64_t job_index,
                               std::string_view reason) {
  std::ostringstream os;
  os << "{\"job\":" << job_index << ",\"status\":\"rejected\",\"error\":";
  append_string(os, reason);
  os << '}';
  return os.str();
}

std::string overlong_line_error(std::size_t max_line_bytes) {
  std::ostringstream os;
  os << "request line exceeds the " << max_line_bytes << "-byte limit";
  return os.str();
}

}  // namespace rts
