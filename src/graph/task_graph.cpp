#include "graph/task_graph.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace rts {

TaskGraph::TaskGraph(std::size_t task_count)
    : succs_(task_count), preds_(task_count), names_(task_count) {
  RTS_REQUIRE(task_count > 0, "task graph needs at least one task");
  RTS_REQUIRE(task_count <= static_cast<std::size_t>(
                                std::numeric_limits<TaskId::rep_type>::max()),
              "task count exceeds TaskId range");
  for (const TaskId t : id_range<TaskId>(task_count)) {
    names_[t] = std::to_string(t.value());
    names_[t].insert(names_[t].begin(), 't');
  }
}

void TaskGraph::check_task(TaskId t, const char* what) const {
  RTS_REQUIRE(t.valid() && t.index() < succs_.size(),
              std::string(what) + ": task id out of range");
}

void TaskGraph::add_edge(TaskId src, TaskId dst, double data) {
  check_task(src, "add_edge src");
  check_task(dst, "add_edge dst");
  RTS_REQUIRE(src != dst, "self loops are not allowed");
  RTS_REQUIRE(data >= 0.0, "edge data size must be non-negative");
  RTS_REQUIRE(!has_edge(src, dst), "duplicate edge");
  succs_[src].push_back(EdgeRef{dst, data});
  preds_[dst].push_back(EdgeRef{src, data});
  ++edge_count_;
}

bool TaskGraph::has_edge(TaskId src, TaskId dst) const {
  check_task(src, "has_edge src");
  check_task(dst, "has_edge dst");
  const auto& out = succs_[src];
  return std::any_of(out.begin(), out.end(),
                     [dst](const EdgeRef& e) { return e.task == dst; });
}

double TaskGraph::edge_data(TaskId src, TaskId dst) const {
  check_task(src, "edge_data src");
  check_task(dst, "edge_data dst");
  const auto& out = succs_[src];
  const auto it = std::find_if(out.begin(), out.end(),
                               [dst](const EdgeRef& e) { return e.task == dst; });
  RTS_REQUIRE(it != out.end(), "edge_data: edge does not exist");
  return it->data;
}

void TaskGraph::set_edge_data(TaskId src, TaskId dst, double data) {
  check_task(src, "set_edge_data src");
  check_task(dst, "set_edge_data dst");
  RTS_REQUIRE(data >= 0.0, "edge data size must be non-negative");
  auto& out = succs_[src];
  const auto it = std::find_if(out.begin(), out.end(),
                               [dst](EdgeRef& e) { return e.task == dst; });
  RTS_REQUIRE(it != out.end(), "set_edge_data: edge does not exist");
  it->data = data;
  auto& in = preds_[dst];
  const auto jt = std::find_if(in.begin(), in.end(),
                               [src](EdgeRef& e) { return e.task == src; });
  RTS_ENSURE(jt != in.end(), "pred/succ adjacency out of sync");
  jt->data = data;
}

std::span<const EdgeRef> TaskGraph::successors(TaskId t) const {
  check_task(t, "successors");
  return succs_[t];
}

std::span<const EdgeRef> TaskGraph::predecessors(TaskId t) const {
  check_task(t, "predecessors");
  return preds_[t];
}

std::vector<TaskId> TaskGraph::entry_tasks() const {
  std::vector<TaskId> out;
  for (const TaskId t : id_range<TaskId>(task_count())) {
    if (preds_[t].empty()) out.push_back(t);
  }
  return out;
}

std::vector<TaskId> TaskGraph::exit_tasks() const {
  std::vector<TaskId> out;
  for (const TaskId t : id_range<TaskId>(task_count())) {
    if (succs_[t].empty()) out.push_back(t);
  }
  return out;
}

bool TaskGraph::is_acyclic() const {
  // Kahn's algorithm: the graph is acyclic iff every task gets popped.
  IdVector<TaskId, std::size_t> indeg(task_count());
  std::vector<TaskId> stack;
  for (const TaskId t : id_range<TaskId>(task_count())) {
    indeg[t] = preds_[t].size();
    if (indeg[t] == 0) stack.push_back(t);
  }
  std::size_t popped = 0;
  while (!stack.empty()) {
    const TaskId t = stack.back();
    stack.pop_back();
    ++popped;
    for (const EdgeRef& e : succs_[t]) {
      if (--indeg[e.task] == 0) stack.push_back(e.task);
    }
  }
  return popped == task_count();
}

void TaskGraph::validate() const {
  RTS_REQUIRE(is_acyclic(), "task graph contains a cycle");
}

void TaskGraph::set_task_name(TaskId t, std::string name) {
  check_task(t, "set_task_name");
  names_[t] = std::move(name);
}

const std::string& TaskGraph::task_name(TaskId t) const {
  check_task(t, "task_name");
  return names_[t];
}

bool TaskGraph::operator==(const TaskGraph& other) const {
  if (task_count() != other.task_count() || edge_count_ != other.edge_count_ ||
      names_ != other.names_) {
    return false;
  }
  const auto sorted = [](std::span<const EdgeRef> edges) {
    std::vector<EdgeRef> copy(edges.begin(), edges.end());
    std::sort(copy.begin(), copy.end(), [](const EdgeRef& a, const EdgeRef& b) {
      return a.task < b.task;  // simple graph: neighbour ids are unique
    });
    return copy;
  };
  for (const TaskId t : id_range<TaskId>(task_count())) {
    if (sorted(succs_[t]) != sorted(other.succs_[t])) return false;
  }
  return true;
}

double TaskGraph::total_edge_data() const noexcept {
  double total = 0.0;
  for (const auto& out : succs_) {
    for (const EdgeRef& e : out) total += e.data;
  }
  return total;
}

}  // namespace rts
