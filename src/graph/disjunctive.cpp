#include "graph/disjunctive.hpp"

#include <vector>

#include "util/error.hpp"

namespace rts {

namespace {

void check_sequences_partition_tasks(const TaskGraph& graph,
                                     std::span<const std::vector<TaskId>> sequences) {
  IdVector<TaskId, bool> seen(graph.task_count(), false);
  std::size_t total = 0;
  for (const auto& seq : sequences) {
    for (const TaskId t : seq) {
      RTS_REQUIRE(t.valid() && t.index() < graph.task_count(),
                  "processor sequence references unknown task");
      RTS_REQUIRE(!seen[t],
                  "task appears in more than one position of the schedule");
      seen[t] = true;
      ++total;
    }
  }
  RTS_REQUIRE(total == graph.task_count(),
              "schedule must place every task exactly once");
}

}  // namespace

TaskGraph make_disjunctive_graph(const TaskGraph& graph,
                                 std::span<const std::vector<TaskId>> processor_sequences) {
  check_sequences_partition_tasks(graph, processor_sequences);

  TaskGraph gs(graph.task_count());
  for (const TaskId t : id_range<TaskId>(graph.task_count())) {
    gs.set_task_name(t, graph.task_name(t));
    for (const EdgeRef& e : graph.successors(t)) {
      gs.add_edge(t, e.task, e.data);
    }
  }
  for (const auto& seq : processor_sequences) {
    for (std::size_t i = 1; i < seq.size(); ++i) {
      const TaskId a = seq[i - 1];
      const TaskId b = seq[i];
      if (gs.has_edge(a, b)) {
        // Existing precedence edge between same-processor neighbours: its
        // communication is intra-processor, hence zero (Eqn. 1).
        gs.set_edge_data(a, b, 0.0);
      } else {
        gs.add_edge(a, b, 0.0);
      }
    }
  }
  RTS_REQUIRE(gs.is_acyclic(),
              "schedule sequences contradict the precedence constraints (cyclic Gs)");
  return gs;
}

std::vector<std::pair<TaskId, TaskId>> disjunctive_edges(
    const TaskGraph& graph, std::span<const std::vector<TaskId>> processor_sequences) {
  check_sequences_partition_tasks(graph, processor_sequences);
  std::vector<std::pair<TaskId, TaskId>> extra;
  for (const auto& seq : processor_sequences) {
    for (std::size_t i = 1; i < seq.size(); ++i) {
      if (!graph.has_edge(seq[i - 1], seq[i])) extra.emplace_back(seq[i - 1], seq[i]);
    }
  }
  return extra;
}

}  // namespace rts
