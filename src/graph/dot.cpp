#include "graph/dot.hpp"

#include <cctype>
#include <istream>
#include <optional>
#include <map>
#include <ostream>

#include "graph/disjunctive.hpp"
#include "util/error.hpp"

namespace rts {

namespace {
void write_nodes(std::ostream& os, const TaskGraph& graph) {
  for (const TaskId t : id_range<TaskId>(graph.task_count())) {
    os << "  n" << t << " [label=\"" << graph.task_name(t)
       << "\", shape=circle];\n";
  }
}
}  // namespace

void write_dot(std::ostream& os, const TaskGraph& graph, const std::string& name,
               bool show_data) {
  os << "digraph \"" << name << "\" {\n";
  write_nodes(os, graph);
  for (const TaskId t : id_range<TaskId>(graph.task_count())) {
    for (const EdgeRef& e : graph.successors(t)) {
      os << "  n" << t << " -> n" << e.task;
      if (show_data) os << " [label=\"" << e.data << "\"]";
      os << ";\n";
    }
  }
  os << "}\n";
}

void write_disjunctive_dot(std::ostream& os, const TaskGraph& graph,
                           std::span<const std::vector<TaskId>> processor_sequences,
                           const std::string& name) {
  const auto extra = disjunctive_edges(graph, processor_sequences);
  os << "digraph \"" << name << "\" {\n";
  write_nodes(os, graph);
  for (const TaskId t : id_range<TaskId>(graph.task_count())) {
    for (const EdgeRef& e : graph.successors(t)) {
      os << "  n" << t << " -> n" << e.task << ";\n";
    }
  }
  for (const auto& [a, b] : extra) {
    os << "  n" << a << " -> n" << b << " [style=dashed];\n";
  }
  os << "}\n";
}

namespace {

/// Token stream over the DOT subset: identifiers, quoted strings, numbers,
/// and the punctuation { } [ ] = ; , plus the -> arrow. Comments skipped.
class DotLexer {
 public:
  explicit DotLexer(std::istream& is) : is_(is) {}

  /// Next token, or empty string at end of input.
  std::string next() {
    skip_space_and_comments();
    int c = is_.peek();
    if (c == EOF) return {};
    if (c == '"') {
      is_.get();
      std::string text;
      while ((c = is_.get()) != EOF && c != '"') {
        if (c == '\\' && is_.peek() == '"') c = is_.get();
        text.push_back(static_cast<char>(c));
      }
      RTS_REQUIRE(c == '"', "unterminated string literal in DOT input");
      quoted_ = true;
      return text;
    }
    quoted_ = false;
    if (c == '-') {
      is_.get();
      RTS_REQUIRE(is_.peek() == '>', "expected '->' (undirected graphs unsupported)");
      is_.get();
      return "->";
    }
    if (std::ispunct(c) && c != '_' && c != '.') {
      is_.get();
      return std::string(1, static_cast<char>(c));
    }
    std::string token;
    // '-' is excluded so `a->b` (no spaces) lexes as id, arrow, id.
    while ((c = is_.peek()) != EOF && (std::isalnum(c) || c == '_' || c == '.')) {
      token.push_back(static_cast<char>(is_.get()));
    }
    RTS_REQUIRE(!token.empty(), "unexpected character in DOT input");
    return token;
  }

  /// Whether the last token came from a quoted string (ids vs strings).
  [[nodiscard]] bool last_was_quoted() const noexcept { return quoted_; }

 private:
  void skip_space_and_comments() {
    for (;;) {
      int c = is_.peek();
      if (c == EOF) return;
      if (std::isspace(c)) {
        is_.get();
        continue;
      }
      if (c == '#') {
        while ((c = is_.get()) != EOF && c != '\n') {
        }
        continue;
      }
      if (c == '/') {
        is_.get();
        const int d = is_.peek();
        if (d == '/') {
          while ((c = is_.get()) != EOF && c != '\n') {
          }
          continue;
        }
        if (d == '*') {
          is_.get();
          int prev = 0;
          while ((c = is_.get()) != EOF && !(prev == '*' && c == '/')) prev = c;
          RTS_REQUIRE(c != EOF, "unterminated block comment in DOT input");
          continue;
        }
        RTS_REQUIRE(false, "stray '/' in DOT input");
      }
      return;
    }
  }

  std::istream& is_;
  bool quoted_ = false;
};

/// [attr=value, ...] lists; returns the `label` value when present.
std::optional<std::string> parse_attributes(DotLexer& lex) {
  std::optional<std::string> label;
  for (;;) {
    std::string key = lex.next();
    if (key == "]") return label;
    RTS_REQUIRE(!key.empty(), "unterminated attribute list in DOT input");
    if (key == ",") continue;
    RTS_REQUIRE(lex.next() == "=", "expected '=' in DOT attribute");
    std::string value = lex.next();
    if (key == "label") label = value;
  }
}

}  // namespace

TaskGraph read_dot(std::istream& is) {
  DotLexer lex(is);
  RTS_REQUIRE(lex.next() == "digraph", "DOT input must start with 'digraph'");
  std::string token = lex.next();
  if (token != "{") token = lex.next();  // optional graph name
  RTS_REQUIRE(token == "{", "expected '{' after digraph header");

  // First pass collects statements; node ids are interned in first-seen
  // order so the TaskGraph can be sized before edges are added.
  struct EdgeStmt {
    std::string src;
    std::string dst;
    double data;
  };
  std::vector<std::string> node_order;
  std::map<std::string, std::string> node_labels;
  std::vector<EdgeStmt> edges;
  const auto intern = [&](const std::string& id) {
    if (node_labels.find(id) == node_labels.end()) {
      node_order.push_back(id);
      node_labels[id] = id;
    }
  };

  for (;;) {
    std::string head = lex.next();
    RTS_REQUIRE(!head.empty(), "unterminated DOT graph (missing '}')");
    if (head == "}") break;
    if (head == ";") continue;
    RTS_REQUIRE(head != "{" && head != "[" && head != "=",
                "malformed DOT statement");
    intern(head);

    std::string token2 = lex.next();
    if (token2 == "->") {
      const std::string dst = lex.next();
      RTS_REQUIRE(!dst.empty() && dst != ";" && dst != "}",
                  "dangling '->' in DOT input");
      intern(dst);
      double data = 0.0;
      std::string maybe_attrs = lex.next();
      if (maybe_attrs == "[") {
        const auto label = parse_attributes(lex);
        if (label) {
          try {
            std::size_t pos = 0;
            data = std::stod(*label, &pos);
            if (pos != label->size()) data = 0.0;  // non-numeric label: ignore
          } catch (const std::exception&) {
            data = 0.0;
          }
        }
        maybe_attrs = lex.next();
      }
      RTS_REQUIRE(maybe_attrs == ";" || maybe_attrs == "}",
                  "expected ';' after DOT edge");
      edges.push_back(EdgeStmt{head, dst, data});
      if (maybe_attrs == "}") break;
    } else if (token2 == "[") {
      const auto label = parse_attributes(lex);
      if (label) node_labels[head] = *label;
      const std::string end = lex.next();
      RTS_REQUIRE(end == ";" || end == "}", "expected ';' after DOT node");
      if (end == "}") break;
    } else if (token2 == ";") {
      continue;  // bare node statement
    } else if (token2 == "}") {
      break;
    } else {
      RTS_REQUIRE(false, "malformed DOT statement near '" + head + "'");
    }
  }

  RTS_REQUIRE(!node_order.empty(), "DOT graph declares no nodes");
  TaskGraph graph(node_order.size());
  std::map<std::string, TaskId> ids;
  for (std::size_t i = 0; i < node_order.size(); ++i) {
    ids[node_order[i]] = static_cast<TaskId>(i);
    graph.set_task_name(static_cast<TaskId>(i), node_labels[node_order[i]]);
  }
  for (const EdgeStmt& e : edges) {
    graph.add_edge(ids[e.src], ids[e.dst], e.data);
  }
  graph.validate();
  return graph;
}

}  // namespace rts
