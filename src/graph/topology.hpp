#pragma once
// Topology algorithms on task graphs: topological orders (deterministic and
// randomized — the GA's initial population needs uniform-ish random ones),
// reachability, and structural queries used by the slack theory (Theorem 3.4
// speaks about tasks *independent in the disjunctive graph*).

#include <vector>

#include "graph/task_graph.hpp"
#include "util/rng.hpp"

namespace rts {

/// Deterministic topological order (Kahn, smallest ready id first).
/// Throws InvalidArgument when the graph is cyclic.
std::vector<TaskId> topological_order(const TaskGraph& graph);

/// Random topological order: repeatedly pick a uniformly random ready task.
/// Used to seed GA scheduling strings. Throws on cyclic input.
std::vector<TaskId> random_topological_order(const TaskGraph& graph, Rng& rng);

/// True when `order` is a permutation of all tasks respecting every edge.
bool is_topological_order(const TaskGraph& graph, std::span<const TaskId> order);

/// Topological order of tasks sorted by a priority value, descending
/// (ties broken by smaller id), while honouring precedence: repeatedly pops
/// the ready task with the highest priority. Used by list schedulers.
std::vector<TaskId> priority_topological_order(const TaskGraph& graph,
                                               IdSpan<TaskId, const double> priority);

/// Dense reachability oracle (bit matrix). O(V*E/64) construction; answers
/// reaches(a, b) — "is there a directed path a ->* b" — in O(1).
class Reachability {
 public:
  explicit Reachability(const TaskGraph& graph);

  /// True when a directed path from `from` to `to` exists (a task reaches
  /// itself by the empty path).
  [[nodiscard]] bool reaches(TaskId from, TaskId to) const;

  /// Tasks a and b are independent when neither reaches the other.
  [[nodiscard]] bool independent(TaskId a, TaskId b) const;

 private:
  std::size_t n_;
  std::size_t words_per_row_;
  std::vector<std::uint64_t> bits_;
};

/// Length (in hop count) of the longest path in the graph, i.e. the number of
/// "levels"; a single task has height 1.
std::size_t graph_height(const TaskGraph& graph);

/// For each task, the 0-based depth = longest hop distance from any entry.
IdVector<TaskId, std::size_t> task_depths(const TaskGraph& graph);

}  // namespace rts
