#pragma once
// Disjunctive graph of a schedule (paper Definition 3.1 and Eqn. 1).
//
// Given task graph G and a schedule s (one execution sequence per processor),
// the disjunctive graph Gs adds an edge between each pair of consecutive
// tasks of a processor sequence; any edge connecting two tasks placed
// consecutively on the same processor carries zero communication data
// (intra-processor transfers are free, Eqn. 1).
//
// This module is deliberately schedule-type agnostic (it takes raw processor
// sequences) so the graph layer does not depend on the scheduling layer; the
// sched layer wraps it with a Schedule-typed convenience overload.

#include <span>
#include <vector>

#include "graph/task_graph.hpp"

namespace rts {

/// Build Gs from G and per-processor execution sequences.
///
/// Requirements (checked): every task appears in exactly one sequence, ids in
/// range, no repeats. The result is validated to be acyclic — a sequence that
/// contradicts precedence constraints makes the schedule invalid and throws.
TaskGraph make_disjunctive_graph(const TaskGraph& graph,
                                 std::span<const std::vector<TaskId>> processor_sequences);

/// The disjunctive edges E' alone (pairs of consecutive same-processor tasks
/// not already linked in G). Exposed for tests and for the DOT renderer,
/// which draws them dashed like the paper's Fig. 1(d).
std::vector<std::pair<TaskId, TaskId>> disjunctive_edges(
    const TaskGraph& graph, std::span<const std::vector<TaskId>> processor_sequences);

}  // namespace rts
