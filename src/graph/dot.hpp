#pragma once
// Graphviz DOT export for task graphs and disjunctive graphs, mirroring the
// paper's Fig. 1: solid arrows for precedence edges, dashed arrows for
// disjunctive (same-processor ordering) edges.

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "graph/task_graph.hpp"

namespace rts {

/// Render `graph` as a DOT digraph. Edge labels show data sizes when
/// `show_data` is set.
void write_dot(std::ostream& os, const TaskGraph& graph, const std::string& name,
               bool show_data = false);

/// Render the disjunctive graph of `graph` under the given processor
/// sequences; disjunctive edges are drawn dashed (cf. paper Fig. 1(d)).
void write_disjunctive_dot(std::ostream& os, const TaskGraph& graph,
                           std::span<const std::vector<TaskId>> processor_sequences,
                           const std::string& name);

/// Parse a DOT digraph (the subset write_dot produces, plus hand-written
/// files using bare node identifiers):
///   digraph name { a; b [label="proj"]; a -> b [label="3.5"]; /* ... */ }
/// Node ids are assigned TaskIds in order of first appearance; a node's
/// `label` attribute becomes its task name; an edge's numeric `label` its
/// data size (default 0). Line (`//`, `#`) and block comments are skipped.
/// Throws InvalidArgument on malformed input or cyclic graphs.
TaskGraph read_dot(std::istream& is);

}  // namespace rts
