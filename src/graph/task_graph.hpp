#pragma once
// DAG application model (paper Section 3.1): tasks, precedence edges and the
// communication data-size matrix D, stored sparsely as per-edge payloads.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/strong_id.hpp"

namespace rts {

/// One directed edge endpoint as seen from a task's adjacency list.
struct EdgeRef {
  TaskId task;  ///< the neighbour (successor or predecessor)
  double data;  ///< amount of data transferred along the edge (d_ij)

  bool operator==(const EdgeRef&) const = default;
};

/// Directed acyclic task graph G = (V, E) with data sizes D.
///
/// The class enforces simple-graph structure eagerly (no self loops, no
/// duplicate edges) and acyclicity lazily: `validate()` and
/// `topological_order()` throw InvalidArgument on a cyclic graph. All
/// schedulers call `validate()` once up front, keeping edge insertion O(deg).
class TaskGraph {
 public:
  /// Graph with `task_count` isolated tasks.
  explicit TaskGraph(std::size_t task_count);

  [[nodiscard]] std::size_t task_count() const noexcept { return succs_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

  /// Add edge src -> dst carrying `data` units of communication.
  /// Throws InvalidArgument on out-of-range ids, self loops, negative data or
  /// duplicate edges.
  void add_edge(TaskId src, TaskId dst, double data);

  /// True when the edge src -> dst exists.
  [[nodiscard]] bool has_edge(TaskId src, TaskId dst) const;

  /// Data size of edge src -> dst; throws InvalidArgument if absent.
  [[nodiscard]] double edge_data(TaskId src, TaskId dst) const;

  /// Replace the data size of an existing edge (used by the disjunctive-graph
  /// builder to zero d_ij per Eqn. 1). Throws InvalidArgument if absent.
  void set_edge_data(TaskId src, TaskId dst, double data);

  /// Immediate successors / predecessors with edge payloads.
  [[nodiscard]] std::span<const EdgeRef> successors(TaskId t) const;
  [[nodiscard]] std::span<const EdgeRef> predecessors(TaskId t) const;

  [[nodiscard]] std::size_t out_degree(TaskId t) const { return successors(t).size(); }
  [[nodiscard]] std::size_t in_degree(TaskId t) const { return predecessors(t).size(); }

  /// Tasks with no predecessors / no successors, ascending by id.
  [[nodiscard]] std::vector<TaskId> entry_tasks() const;
  [[nodiscard]] std::vector<TaskId> exit_tasks() const;

  /// True when the graph contains no directed cycle.
  [[nodiscard]] bool is_acyclic() const;

  /// Throws InvalidArgument when the graph is cyclic.
  void validate() const;

  /// Optional human-readable task names (used by DOT export and examples).
  void set_task_name(TaskId t, std::string name);
  [[nodiscard]] const std::string& task_name(TaskId t) const;

  /// Sum of all edge data sizes (used to calibrate CCR in generators).
  [[nodiscard]] double total_edge_data() const noexcept;

  /// Structural equality: same task count, names, and edge set (with data).
  /// Insertion order of edges is irrelevant.
  bool operator==(const TaskGraph& other) const;

 private:
  void check_task(TaskId t, const char* what) const;

  IdVector<TaskId, std::vector<EdgeRef>> succs_;
  IdVector<TaskId, std::vector<EdgeRef>> preds_;
  IdVector<TaskId, std::string> names_;
  std::size_t edge_count_ = 0;
};

}  // namespace rts
