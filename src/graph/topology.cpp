#include "graph/topology.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace rts {

namespace {

IdVector<TaskId, std::size_t> initial_indegrees(const TaskGraph& graph) {
  IdVector<TaskId, std::size_t> indeg(graph.task_count());
  for (const TaskId t : id_range<TaskId>(graph.task_count())) {
    indeg[t] = graph.in_degree(t);
  }
  return indeg;
}

}  // namespace

std::vector<TaskId> topological_order(const TaskGraph& graph) {
  auto indeg = initial_indegrees(graph);
  // Min-heap on id gives a canonical order independent of insertion history.
  std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> ready;
  for (const TaskId t : id_range<TaskId>(graph.task_count())) {
    if (indeg[t] == 0) ready.push(t);
  }
  std::vector<TaskId> order;
  order.reserve(graph.task_count());
  while (!ready.empty()) {
    const TaskId t = ready.top();
    ready.pop();
    order.push_back(t);
    for (const EdgeRef& e : graph.successors(t)) {
      if (--indeg[e.task] == 0) ready.push(e.task);
    }
  }
  RTS_REQUIRE(order.size() == graph.task_count(), "task graph contains a cycle");
  return order;
}

std::vector<TaskId> random_topological_order(const TaskGraph& graph, Rng& rng) {
  auto indeg = initial_indegrees(graph);
  std::vector<TaskId> ready;
  for (const TaskId t : id_range<TaskId>(graph.task_count())) {
    if (indeg[t] == 0) ready.push_back(t);
  }
  std::vector<TaskId> order;
  order.reserve(graph.task_count());
  while (!ready.empty()) {
    const std::size_t pick = static_cast<std::size_t>(rng.next_below(ready.size()));
    const TaskId t = ready[pick];
    // Swap-remove keeps the ready set O(1) per pop; order within the set is
    // irrelevant because the pick is uniform.
    ready[pick] = ready.back();
    ready.pop_back();
    order.push_back(t);
    for (const EdgeRef& e : graph.successors(t)) {
      if (--indeg[e.task] == 0) ready.push_back(e.task);
    }
  }
  RTS_REQUIRE(order.size() == graph.task_count(), "task graph contains a cycle");
  return order;
}

bool is_topological_order(const TaskGraph& graph, std::span<const TaskId> order) {
  if (order.size() != graph.task_count()) return false;
  IdVector<TaskId, std::size_t> position(graph.task_count(), graph.task_count());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const TaskId t = order[i];
    if (!t.valid() || t.index() >= graph.task_count()) return false;
    if (position[t] != graph.task_count()) return false;  // dup
    position[t] = i;
  }
  for (const TaskId t : id_range<TaskId>(graph.task_count())) {
    for (const EdgeRef& e : graph.successors(t)) {
      if (position[t] >= position[e.task]) return false;
    }
  }
  return true;
}

std::vector<TaskId> priority_topological_order(const TaskGraph& graph,
                                               IdSpan<TaskId, const double> priority) {
  RTS_REQUIRE(priority.size() == graph.task_count(),
              "priority vector length must equal task count");
  auto indeg = initial_indegrees(graph);
  const auto cmp = [&priority](TaskId a, TaskId b) {
    const double pa = priority[a];
    const double pb = priority[b];
    // priority_queue keeps the *largest* element on top under `less`; we want
    // highest priority first, ties to the smaller id.
    if (pa != pb) return pa < pb;
    return a > b;
  };
  std::priority_queue<TaskId, std::vector<TaskId>, decltype(cmp)> ready(cmp);
  for (const TaskId t : id_range<TaskId>(graph.task_count())) {
    if (indeg[t] == 0) ready.push(t);
  }
  std::vector<TaskId> order;
  order.reserve(graph.task_count());
  while (!ready.empty()) {
    const TaskId t = ready.top();
    ready.pop();
    order.push_back(t);
    for (const EdgeRef& e : graph.successors(t)) {
      if (--indeg[e.task] == 0) ready.push(e.task);
    }
  }
  RTS_REQUIRE(order.size() == graph.task_count(), "task graph contains a cycle");
  return order;
}

Reachability::Reachability(const TaskGraph& graph)
    : n_(graph.task_count()), words_per_row_((n_ + 63) / 64), bits_(n_ * words_per_row_, 0) {
  // Sweep in reverse topological order; row(t) = {t} ∪ ⋃ row(succ).
  const auto order = topological_order(graph);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t t = it->index();
    std::uint64_t* row_t = bits_.data() + t * words_per_row_;
    row_t[t / 64] |= (std::uint64_t{1} << (t % 64));
    for (const EdgeRef& e : graph.successors(*it)) {
      const std::uint64_t* row_s = bits_.data() + e.task.index() * words_per_row_;
      for (std::size_t w = 0; w < words_per_row_; ++w) row_t[w] |= row_s[w];
    }
  }
}

bool Reachability::reaches(TaskId from, TaskId to) const {
  RTS_REQUIRE(from.valid() && from.index() < n_, "task id out of range");
  RTS_REQUIRE(to.valid() && to.index() < n_, "task id out of range");
  const std::size_t f = from.index();
  const std::size_t t = to.index();
  return (bits_[f * words_per_row_ + t / 64] >> (t % 64)) & 1u;
}

bool Reachability::independent(TaskId a, TaskId b) const {
  return a != b && !reaches(a, b) && !reaches(b, a);
}

std::size_t graph_height(const TaskGraph& graph) {
  const auto depths = task_depths(graph);
  return 1 + *std::max_element(depths.begin(), depths.end());
}

IdVector<TaskId, std::size_t> task_depths(const TaskGraph& graph) {
  IdVector<TaskId, std::size_t> depth(graph.task_count(), 0);
  for (const TaskId t : topological_order(graph)) {
    for (const EdgeRef& e : graph.successors(t)) {
      auto& d = depth[e.task];
      d = std::max(d, depth[t] + 1);
    }
  }
  return depth;
}

}  // namespace rts
